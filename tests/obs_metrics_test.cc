// MetricsRegistry unit coverage: the naming contract, the runtime
// kill switch, histogram edge cases (empty quantiles, overflow
// clamping, concurrent exact sums), registration idempotence, and
// both export formats.
//
// Histogram-concurrency tests carry the `parallel` ctest label via
// the binary's registration so the tsan run exercises the lock-free
// recording path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace lexequal::obs {
namespace {

// Restores the runtime switch after each test so the binary's other
// tests never observe a disabled registry.
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = SetEnabled(true); }
  void TearDown() override { SetEnabled(previous_); }

  bool previous_ = true;
  MetricsRegistry registry_;  // fresh per test; no cross-test names
};

TEST_F(ObsMetricsTest, ValidNameEnforcesPrefixAndSnakeCase) {
  EXPECT_TRUE(MetricsRegistry::ValidName("lexequal_bufpool_hits"));
  EXPECT_TRUE(MetricsRegistry::ValidName("lexequal_g2p_transforms"));
  EXPECT_TRUE(
      MetricsRegistry::ValidName("lexequal_parallel_chunk_wall_us"));

  EXPECT_FALSE(MetricsRegistry::ValidName(""));
  EXPECT_FALSE(MetricsRegistry::ValidName("bufpool_hits"));
  EXPECT_FALSE(MetricsRegistry::ValidName("lexequal_hits"));  // 1 segment
  EXPECT_FALSE(MetricsRegistry::ValidName("lexequal_BufPool_hits"));
  EXPECT_FALSE(MetricsRegistry::ValidName("lexequal_bufpool_"));
  EXPECT_FALSE(MetricsRegistry::ValidName("lexequal__hits"));
  EXPECT_FALSE(MetricsRegistry::ValidName("lexequal_bufpool-hits"));
  EXPECT_FALSE(MetricsRegistry::ValidName("lexequal_bufpool_hits "));
}

TEST_F(ObsMetricsTest, RegistrationReturnsSamePointerPerName) {
  Counter* a = registry_.GetCounter("lexequal_test_counter", "help");
  Counter* b = registry_.GetCounter("lexequal_test_counter");
  EXPECT_EQ(a, b);

  Gauge* g1 = registry_.GetGauge("lexequal_test_gauge");
  Gauge* g2 = registry_.GetGauge("lexequal_test_gauge");
  EXPECT_EQ(g1, g2);

  Histogram* h1 = registry_.GetHistogram("lexequal_test_hist_us");
  Histogram* h2 = registry_.GetHistogram("lexequal_test_hist_us");
  EXPECT_EQ(h1, h2);

  EXPECT_EQ(registry_.Names(),
            (std::vector<std::string>{"lexequal_test_counter",
                                      "lexequal_test_gauge",
                                      "lexequal_test_hist_us"}));
}

TEST_F(ObsMetricsTest, SetEnabledGatesMutationsAndRestores) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "mutations compiled out under LEXEQUAL_NO_OBS";
#endif
  Counter* c = registry_.GetCounter("lexequal_test_gated");
  Gauge* g = registry_.GetGauge("lexequal_test_gated_gauge");
  Histogram* h = registry_.GetHistogram("lexequal_test_gated_us");

  ASSERT_TRUE(SetEnabled(false));  // previous value was true (SetUp)
  EXPECT_FALSE(Enabled());
  c->Inc();
  g->Add(5);
  h->Record(10);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);

  EXPECT_FALSE(SetEnabled(true));  // returns the value it replaces
  c->Inc(3);
  g->Set(-2);
  h->Record(10);
  EXPECT_EQ(c->value(), 3u);
  EXPECT_EQ(g->value(), -2);
  EXPECT_EQ(h->count(), 1u);
}

TEST_F(ObsMetricsTest, EmptyHistogramReportsZeroQuantiles) {
  Histogram* h = registry_.GetHistogram("lexequal_test_empty_us");
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->sum(), 0u);
  EXPECT_EQ(h->overflow(), 0u);
  EXPECT_EQ(h->Quantile(0.0), 0.0);
  EXPECT_EQ(h->p50(), 0.0);
  EXPECT_EQ(h->p99(), 0.0);
}

TEST_F(ObsMetricsTest, HistogramOverflowBucketClampsQuantiles) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "Record compiled out under LEXEQUAL_NO_OBS";
#endif
  Histogram* h = registry_.GetHistogram("lexequal_test_overflow_us");
  const uint64_t max_bound = Histogram::BucketBounds().back();

  h->Record(max_bound + 1);
  h->Record(max_bound * 10);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->overflow(), 2u);
  EXPECT_EQ(h->sum(), (max_bound + 1) + max_bound * 10);
  // All mass is past the last finite bound: quantiles clamp to it
  // instead of inventing a value the buckets cannot resolve.
  EXPECT_EQ(h->p50(), static_cast<double>(max_bound));
  EXPECT_EQ(h->p99(), static_cast<double>(max_bound));

  // A value exactly on the bound is finite, not overflow.
  h->Record(max_bound);
  EXPECT_EQ(h->overflow(), 2u);
  EXPECT_EQ(h->count(), 3u);
}

TEST_F(ObsMetricsTest, HistogramBucketsArePositiveAndAscending) {
  const auto& bounds = Histogram::BucketBounds();
  ASSERT_EQ(bounds.size(), Histogram::kBucketCount);
  EXPECT_GE(bounds.front(), 1u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "bucket " << i;
  }
}

TEST_F(ObsMetricsTest, HistogramQuantileInterpolatesWithinBucket) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "Record compiled out under LEXEQUAL_NO_OBS";
#endif
  Histogram* h = registry_.GetHistogram("lexequal_test_interp_us");
  for (int i = 0; i < 100; ++i) h->Record(7);  // all in one bucket
  const double p50 = h->p50();
  // The observation bucket for 7 µs is (5, 10]; interpolation stays
  // inside it.
  EXPECT_GT(p50, 5.0);
  EXPECT_LE(p50, 10.0);
  EXPECT_GE(h->p99(), p50);
}

TEST_F(ObsMetricsTest, ConcurrentRecordsKeepExactCountAndSum) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "Record compiled out under LEXEQUAL_NO_OBS";
#endif
  Histogram* h = registry_.GetHistogram("lexequal_test_race_us");
  Counter* c = registry_.GetCounter("lexequal_test_race_count");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Record(7);
        c->Inc();
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const uint64_t total =
      static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(c->value(), total);
  EXPECT_EQ(h->count(), total);
  EXPECT_EQ(h->sum(), total * 7);
  EXPECT_EQ(h->overflow(), 0u);
}

TEST_F(ObsMetricsTest, ExportPrometheusContainsAllSeries) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "exports show zeros under LEXEQUAL_NO_OBS";
#endif
  registry_.GetCounter("lexequal_test_export", "counts things")->Inc(42);
  registry_.GetGauge("lexequal_test_export_gauge")->Set(-3);
  Histogram* h = registry_.GetHistogram("lexequal_test_export_us");
  h->Record(7);

  const std::string text = registry_.ExportPrometheus();
  EXPECT_NE(text.find("# TYPE lexequal_test_export counter"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP lexequal_test_export counts things"),
            std::string::npos);
  EXPECT_NE(text.find("lexequal_test_export 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lexequal_test_export_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("lexequal_test_export_gauge -3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE lexequal_test_export_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("lexequal_test_export_us_count 1"),
            std::string::npos);
  EXPECT_NE(text.find("lexequal_test_export_us_sum 7"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST_F(ObsMetricsTest, ExportJsonGroupsByKind) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "exports show zeros under LEXEQUAL_NO_OBS";
#endif
  registry_.GetCounter("lexequal_test_json")->Inc(5);
  registry_.GetGauge("lexequal_test_json_gauge")->Set(9);
  registry_.GetHistogram("lexequal_test_json_us")->Record(100);

  const std::string json = registry_.ExportJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"lexequal_test_json\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"lexequal_test_json_gauge\": 9"),
            std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"lexequal_test_json_us\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST_F(ObsMetricsTest, ResetAllZeroesEveryMetric) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "mutations compiled out under LEXEQUAL_NO_OBS";
#endif
  Counter* c = registry_.GetCounter("lexequal_test_reset");
  Gauge* g = registry_.GetGauge("lexequal_test_reset_gauge");
  Histogram* h = registry_.GetHistogram("lexequal_test_reset_us");
  c->Inc(10);
  g->Set(10);
  h->Record(10);

  registry_.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->sum(), 0u);
  EXPECT_EQ(h->p50(), 0.0);
}

TEST_F(ObsMetricsTest, DefaultRegistryIsProcessWideSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

TEST_F(ObsMetricsTest, SingleSampleHistogramQuantiles) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "Record compiled out under LEXEQUAL_NO_OBS";
#endif
  Histogram* h = registry_.GetHistogram("lexequal_test_single_us");
  h->Record(7);
  // One observation: every quantile resolves inside its (5, 10]
  // bucket, and the snapshot mirrors the live accessors exactly.
  const HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 7u);
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_GT(snap.Quantile(q), 5.0) << "q=" << q;
    EXPECT_LE(snap.Quantile(q), 10.0) << "q=" << q;
  }
  EXPECT_EQ(snap.p50(), h->p50());
}

TEST_F(ObsMetricsTest, AllOverflowSnapshotClampsQuantiles) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "Record compiled out under LEXEQUAL_NO_OBS";
#endif
  Histogram* h = registry_.GetHistogram("lexequal_test_allover_us");
  const uint64_t max_bound = Histogram::BucketBounds().back();
  for (int i = 0; i < 5; ++i) h->Record(max_bound * 2);
  const HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.buckets.back(), 5u);  // all mass in overflow
  EXPECT_EQ(snap.Quantile(0.5), static_cast<double>(max_bound));
  EXPECT_EQ(snap.Quantile(1.0), static_cast<double>(max_bound));
}

TEST_F(ObsMetricsTest, EmptySnapshotQuantilesAreZero) {
  const HistogramSnapshot snap =
      registry_.GetHistogram("lexequal_test_emptysnap_us")->Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.p99(), 0.0);
}

// Regression for the export-inconsistency bug: Histogram::Record is
// three separate relaxed atomic RMWs (bucket, count, sum), so a
// reader walking the raw fields mid-Record could export a histogram
// whose bucket total disagreed with its _count — which downstream
// consumers (Prometheus rate() over +Inf vs _count, SHOW STATEMENTS
// p99) interpret as corruption. Snapshot() must always return
// buckets summing exactly to count, even under a recorder storm and
// a SetEnabled writer flapping the global switch.
TEST_F(ObsMetricsTest, SnapshotIsConsistentUnderRecorderRace) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "Record compiled out under LEXEQUAL_NO_OBS";
#endif
  Histogram* h = registry_.GetHistogram("lexequal_test_snaprace_us");
  std::atomic<bool> stop{false};
  constexpr int kRecorders = 4;
  std::vector<std::thread> workers;
  workers.reserve(kRecorders + 1);
  for (int t = 0; t < kRecorders; ++t) {
    workers.emplace_back([&, t] {
      uint64_t v = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        h->Record(v % 4096 + t);
        ++v;
      }
    });
  }
  // The kill switch flaps concurrently: a half-disabled Record must
  // never surface as a torn snapshot either.
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      SetEnabled(false);
      SetEnabled(true);
    }
  });

  for (int i = 0; i < 2000; ++i) {
    const HistogramSnapshot snap = h->Snapshot();
    uint64_t total = 0;
    for (const uint64_t b : snap.buckets) total += b;
    ASSERT_EQ(total, snap.count) << "torn snapshot at iteration " << i;
  }
  stop.store(true);
  for (std::thread& w : workers) w.join();
  SetEnabled(true);

  // Quiesced: the final snapshot matches the live fields exactly.
  const HistogramSnapshot final_snap = h->Snapshot();
  EXPECT_EQ(final_snap.count, h->count());
  EXPECT_EQ(final_snap.sum, h->sum());
}

// The same property read through the public exports: the +Inf
// cumulative bucket of a Prometheus dump must equal _count in every
// dump taken while recorders run.
TEST_F(ObsMetricsTest, ExportBucketsMatchCountUnderRace) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "Record compiled out under LEXEQUAL_NO_OBS";
#endif
  Histogram* h = registry_.GetHistogram("lexequal_test_exportrace_us");
  std::atomic<bool> stop{false};
  std::thread recorder([&] {
    uint64_t v = 1;
    while (!stop.load(std::memory_order_relaxed)) h->Record(v++ % 997);
  });

  auto parse_metric = [](const std::string& text, const std::string& line_prefix) {
    const size_t pos = text.find(line_prefix);
    EXPECT_NE(pos, std::string::npos) << line_prefix;
    if (pos == std::string::npos) return uint64_t{0};
    const size_t val = text.find_last_of(' ', text.find('\n', pos));
    return static_cast<uint64_t>(
        std::strtoull(text.c_str() + val + 1, nullptr, 10));
  };
  for (int i = 0; i < 200; ++i) {
    const std::string text = registry_.ExportPrometheus();
    const uint64_t inf = parse_metric(
        text, "lexequal_test_exportrace_us_bucket{le=\"+Inf\"}");
    const uint64_t count =
        parse_metric(text, "lexequal_test_exportrace_us_count");
    ASSERT_EQ(inf, count) << "inconsistent export at iteration " << i;
  }
  stop.store(true);
  recorder.join();
}

}  // namespace
}  // namespace lexequal::obs
