// Parameterized property sweeps over the matcher's tunable space:
// each invariant is checked at every (threshold, intra-cluster cost)
// grid point.

#include <gtest/gtest.h>

#include <tuple>

#include "common/random.h"
#include "match/edit_distance.h"
#include "match/lexequal.h"
#include "match/qgram.h"

namespace lexequal::match {
namespace {

using phonetic::kPhonemeCount;
using phonetic::Phoneme;
using phonetic::PhonemeString;

PhonemeString RandomString(Random* rng, size_t min_len, size_t max_len) {
  size_t len = min_len + rng->Uniform(max_len - min_len + 1);
  std::vector<Phoneme> ph;
  for (size_t i = 0; i < len; ++i) {
    ph.push_back(static_cast<Phoneme>(rng->Uniform(kPhonemeCount)));
  }
  return PhonemeString(std::move(ph));
}

class MatcherSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {
 protected:
  LexEqualOptions Options() const {
    return {.threshold = std::get<0>(GetParam()),
            .intra_cluster_cost = std::get<1>(GetParam())};
  }
};

TEST_P(MatcherSweep, MatchingIsReflexive) {
  LexEqualMatcher matcher(Options());
  Random rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    PhonemeString s = RandomString(&rng, 1, 12);
    EXPECT_TRUE(matcher.MatchPhonemes(s, s));
  }
}

TEST_P(MatcherSweep, MatchingIsSymmetric) {
  LexEqualMatcher matcher(Options());
  Random rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    PhonemeString a = RandomString(&rng, 1, 10);
    PhonemeString b = RandomString(&rng, 1, 10);
    EXPECT_EQ(matcher.MatchPhonemes(a, b), matcher.MatchPhonemes(b, a));
  }
}

TEST_P(MatcherSweep, DistanceDecisionAgreesWithFullDp) {
  // The operator's bounded-DP decision must equal a decision made
  // with the exhaustive distance.
  LexEqualMatcher matcher(Options());
  ClusteredCost cost(phonetic::ClusterTable::Default(),
                     Options().intra_cluster_cost);
  Random rng(17);
  for (int trial = 0; trial < 300; ++trial) {
    PhonemeString a = RandomString(&rng, 1, 9);
    PhonemeString b = RandomString(&rng, 1, 9);
    const double bound = matcher.Allowance(a.size(), b.size());
    const bool exhaustive = EditDistance(a, b, cost) <= bound;
    EXPECT_EQ(matcher.MatchPhonemes(a, b), exhaustive)
        << a.ToIpa() << " ~ " << b.ToIpa();
  }
}

TEST_P(MatcherSweep, IntraClusterSubstitutionsCostAtMostParameter) {
  // A single intra-cluster substitution must match whenever
  // threshold * len >= cost parameter.
  LexEqualOptions options = Options();
  LexEqualMatcher matcher(options);
  PhonemeString a({Phoneme::kN, Phoneme::kE, Phoneme::kR, Phoneme::kU,
                   Phoneme::kK, Phoneme::kA});
  PhonemeString b({Phoneme::kN, Phoneme::kEh, Phoneme::kR, Phoneme::kU,
                   Phoneme::kK, Phoneme::kA});  // e -> ɛ intra
  const bool expected =
      options.intra_cluster_cost <= options.threshold * 6.0 + 1e-12;
  EXPECT_EQ(matcher.MatchPhonemes(a, b), expected);
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, MatcherSweep,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.25, 0.35, 0.5),
                       ::testing::Values(0.0, 0.25, 0.5, 1.0)),
    [](const auto& info) {
      return "t" +
             std::to_string(static_cast<int>(
                 std::get<0>(info.param) * 100)) +
             "_c" +
             std::to_string(
                 static_cast<int>(std::get<1>(info.param) * 100));
    });

// Q-gram no-false-dismissal sweep over (q, k).
class QGramSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(QGramSweep, NoFalseDismissalsUnderLevenshtein) {
  const int q = std::get<0>(GetParam());
  const double k = std::get<1>(GetParam());
  LevenshteinCost cost;
  Random rng(q * 1000 + static_cast<int>(k * 10));
  int within = 0;
  for (int trial = 0; trial < 800; ++trial) {
    size_t len = 2 + rng.Uniform(10);
    std::vector<Phoneme> base;
    for (size_t i = 0; i < len; ++i) {
      base.push_back(static_cast<Phoneme>(rng.Uniform(kPhonemeCount)));
    }
    std::vector<Phoneme> mutated = base;
    const int edits = static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] =
              static_cast<Phoneme>(rng.Uniform(kPhonemeCount));
          break;
        case 1:
          mutated.erase(mutated.begin() + pos);
          break;
        default:
          mutated.insert(
              mutated.begin() + pos,
              static_cast<Phoneme>(rng.Uniform(kPhonemeCount)));
      }
    }
    PhonemeString a(base);
    PhonemeString b(mutated);
    if (EditDistance(a, b, cost) <= k) {
      ++within;
      EXPECT_TRUE(PassesQGramFilters(a, b, k, q))
          << "q=" << q << " k=" << k << " " << a.ToIpa() << " ~ "
          << b.ToIpa();
    }
  }
  EXPECT_GT(within, 50);
}

INSTANTIATE_TEST_SUITE_P(
    QkGrid, QGramSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1.0, 2.0, 3.0)),
    [](const auto& info) {
      return "q" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

}  // namespace
}  // namespace lexequal::match
