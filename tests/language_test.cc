#include "text/language.h"

#include <gtest/gtest.h>

#include "text/tagged_string.h"
#include "text/utf8.h"

namespace lexequal::text {
namespace {

TEST(LanguageTest, ParseRoundTripsNames) {
  for (Language lang :
       {Language::kEnglish, Language::kHindi, Language::kTamil,
        Language::kGreek, Language::kFrench, Language::kSpanish,
        Language::kArabic, Language::kJapanese}) {
    Result<Language> parsed = ParseLanguage(LanguageName(lang));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), lang);
  }
}

TEST(LanguageTest, ParseIsCaseInsensitiveAndTrims) {
  EXPECT_EQ(ParseLanguage(" ENGLISH ").value(), Language::kEnglish);
  EXPECT_EQ(ParseLanguage("tamil").value(), Language::kTamil);
  EXPECT_EQ(ParseLanguage("*").value(), Language::kAny);
  EXPECT_EQ(ParseLanguage("any").value(), Language::kAny);
  EXPECT_TRUE(ParseLanguage("klingon").status().IsNotFound());
}

TEST(ScriptTest, CodePointScripts) {
  EXPECT_EQ(ScriptOfCodePoint('A'), Script::kLatin);
  EXPECT_EQ(ScriptOfCodePoint(0x00E9), Script::kLatin);      // é
  EXPECT_EQ(ScriptOfCodePoint(0x0928), Script::kDevanagari);  // न
  EXPECT_EQ(ScriptOfCodePoint(0x0BA8), Script::kTamil);       // ந
  EXPECT_EQ(ScriptOfCodePoint(0x03B1), Script::kGreek);       // α
  EXPECT_EQ(ScriptOfCodePoint(0x0645), Script::kArabic);      // م
  EXPECT_EQ(ScriptOfCodePoint(0x4E00), Script::kCjk);
  EXPECT_EQ(ScriptOfCodePoint(0x0259), Script::kIpa);         // ə
  EXPECT_EQ(ScriptOfCodePoint('1'), Script::kUnknown);
}

TEST(ScriptTest, DetectDominantScript) {
  EXPECT_EQ(DetectScript("Nehru"), Script::kLatin);
  EXPECT_EQ(DetectScript(EncodeUtf8({0x0928, 0x0947, 0x0939})),
            Script::kDevanagari);
  EXPECT_EQ(DetectScript(EncodeUtf8({0x0BA8, 0x0BC7, 0x0BB0})),
            Script::kTamil);
  EXPECT_EQ(DetectScript("12345 --"), Script::kUnknown);
  EXPECT_EQ(DetectScript(""), Script::kUnknown);
}

TEST(ScriptTest, DetectIgnoresCommonCharacters) {
  // Digits and punctuation do not dilute the dominant script.
  std::string mixed = "12-" + EncodeUtf8({0x0928, 0x0947});
  EXPECT_EQ(DetectScript(mixed), Script::kDevanagari);
}

TEST(ScriptTest, LanguageScriptMapping) {
  EXPECT_EQ(ScriptOfLanguage(Language::kEnglish), Script::kLatin);
  EXPECT_EQ(ScriptOfLanguage(Language::kHindi), Script::kDevanagari);
  EXPECT_EQ(ScriptOfLanguage(Language::kTamil), Script::kTamil);
  EXPECT_EQ(DefaultLanguageForScript(Script::kLatin), Language::kEnglish);
  EXPECT_EQ(DefaultLanguageForScript(Script::kDevanagari),
            Language::kHindi);
}

TEST(TaggedStringTest, ExplicitTag) {
  TaggedString s("Nehru", Language::kEnglish);
  EXPECT_EQ(s.text(), "Nehru");
  EXPECT_EQ(s.language(), Language::kEnglish);
  EXPECT_EQ(s.CodePointLength(), 5u);
}

TEST(TaggedStringTest, DetectedTag) {
  TaggedString hindi = TaggedString::WithDetectedLanguage(
      EncodeUtf8({0x0928, 0x0947, 0x0939, 0x0930, 0x0941}));
  EXPECT_EQ(hindi.language(), Language::kHindi);
  EXPECT_EQ(hindi.script(), Script::kDevanagari);
  EXPECT_EQ(hindi.CodePointLength(), 5u);
}

TEST(TaggedStringTest, Equality) {
  TaggedString a("x", Language::kEnglish);
  TaggedString b("x", Language::kEnglish);
  TaggedString c("x", Language::kFrench);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace lexequal::text
