#include <gtest/gtest.h>

#include "g2p/devanagari_g2p.h"
#include "g2p/tamil_g2p.h"
#include "text/utf8.h"

namespace lexequal::g2p {
namespace {

using text::EncodeUtf8;

class IndicG2PTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    hindi_ = DevanagariG2P::Create().value().release();
    tamil_ = TamilG2P::Create().value().release();
  }
  static std::string HindiIpa(const std::vector<uint32_t>& cps) {
    Result<phonetic::PhonemeString> ps = hindi_->ToPhonemes(EncodeUtf8(cps));
    EXPECT_TRUE(ps.ok()) << ps.status();
    return ps.ok() ? ps.value().ToIpa() : "<error>";
  }
  static std::string TamilIpa(const std::vector<uint32_t>& cps) {
    Result<phonetic::PhonemeString> ps = tamil_->ToPhonemes(EncodeUtf8(cps));
    EXPECT_TRUE(ps.ok()) << ps.status();
    return ps.ok() ? ps.value().ToIpa() : "<error>";
  }
  static DevanagariG2P* hindi_;
  static TamilG2P* tamil_;
};

DevanagariG2P* IndicG2PTest::hindi_ = nullptr;
TamilG2P* IndicG2PTest::tamil_ = nullptr;

// --- Devanagari ---

TEST_F(IndicG2PTest, HindiNehru) {
  // नेहरु: na + e-matra, ha, ra + u-matra. The medial inherent schwa
  // of ha deletes (V C ə C V) -> nehru.
  std::string ipa = HindiIpa({0x0928, 0x0947, 0x0939, 0x0930, 0x0941});
  EXPECT_EQ(ipa, "nehrʊ");
}

TEST_F(IndicG2PTest, HindiRam) {
  // राम: final inherent schwa deletes -> rɑm... (a-matra = a).
  std::string ipa = HindiIpa({0x0930, 0x093E, 0x092E});
  EXPECT_EQ(ipa, "ram");
}

TEST_F(IndicG2PTest, HindiViramaCluster) {
  // भारत (bhɑrat): bha + a-matra, ra, ta; final schwa deleted.
  std::string ipa = HindiIpa({0x092D, 0x093E, 0x0930, 0x0924});
  EXPECT_EQ(ipa, "bʱarət");
}

TEST_F(IndicG2PTest, HindiIndependentVowels) {
  // आइ -> a + ɪ.
  std::string ipa = HindiIpa({0x0906, 0x0907});
  EXPECT_EQ(ipa, "aɪ");
}

TEST_F(IndicG2PTest, HindiAnusvaraHomorganic) {
  // संत (sant): anusvara before dental t -> n.
  std::string with_t = HindiIpa({0x0938, 0x0902, 0x0924});
  EXPECT_NE(with_t.find("n"), std::string::npos);
  // संप: anusvara before p -> m.
  std::string with_p = HindiIpa({0x0938, 0x0902, 0x092A});
  EXPECT_NE(with_p.find("m"), std::string::npos);
}

TEST_F(IndicG2PTest, HindiNuktaConsonants) {
  // फ़ -> f, ज़ -> z (precomposed).
  EXPECT_EQ(HindiIpa({0x095E, 0x093E}), "fa");
  EXPECT_EQ(HindiIpa({0x095B, 0x093E}), "za");
  // Combining nukta: फ + ◌़ -> f.
  EXPECT_EQ(HindiIpa({0x092B, 0x093C, 0x093E}), "fa");
}

TEST_F(IndicG2PTest, HindiVirama) {
  // र्क (rka cluster via virama on ra) inside मार्क "Mark".
  std::string ipa = HindiIpa({0x092E, 0x093E, 0x0930, 0x094D, 0x0915});
  EXPECT_EQ(ipa, "mark");
}

TEST_F(IndicG2PTest, HindiRejectsForeignCodePoints) {
  Result<phonetic::PhonemeString> ps = hindi_->ToPhonemes("abc");
  EXPECT_FALSE(ps.ok());
}

// --- Tamil ---

TEST_F(IndicG2PTest, TamilNeru) {
  // நேரு: na + e-matra, ra + u-matra -> neru (front n folds to n).
  std::string ipa = TamilIpa({0x0BA8, 0x0BC7, 0x0BB0, 0x0BC1});
  EXPECT_EQ(ipa, "nerʊ");
}

TEST_F(IndicG2PTest, TamilPositionalVoicing) {
  // க word-initial -> k: கமலா (Kamala).
  std::string kamala =
      TamilIpa({0x0B95, 0x0BAE, 0x0BB2, 0x0BBE});
  EXPECT_EQ(kamala[0], 'k');
  // Intervocalic க -> ɡ: மகன் (magan).
  std::string magan = TamilIpa({0x0BAE, 0x0B95, 0x0BA9, 0x0BCD});
  EXPECT_NE(magan.find("ɡ"), std::string::npos);
  // After nasal: பாண்டி -> ɖ voiced.
  std::string pandi =
      TamilIpa({0x0BAA, 0x0BBE, 0x0BA3, 0x0BCD, 0x0B9F, 0x0BBF});
  EXPECT_NE(pandi.find("ɖ"), std::string::npos);
}

TEST_F(IndicG2PTest, TamilGeminateStaysVoiceless) {
  // க்க geminate -> k: பக்கம்.
  std::string ipa = TamilIpa(
      {0x0BAA, 0x0B95, 0x0BCD, 0x0B95, 0x0BAE, 0x0BCD});
  // Exactly one k (the geminate collapses is not required; voicing is).
  EXPECT_EQ(ipa.find("ɡ"), std::string::npos);
}

TEST_F(IndicG2PTest, TamilDiphthongs) {
  // ஐ -> a + ɪ.
  std::string ipa = TamilIpa({0x0B90});
  EXPECT_EQ(ipa, "aɪ");
  // கை -> k a ɪ.
  EXPECT_EQ(TamilIpa({0x0B95, 0x0BC8}), "kaɪ");
}

TEST_F(IndicG2PTest, TamilGranthaLetters) {
  // ஜ -> dʒ, ஸ -> s, ஹ -> h, ஷ -> ʂ.
  EXPECT_EQ(TamilIpa({0x0B9C, 0x0BBE}), "dʒa");
  EXPECT_EQ(TamilIpa({0x0BB8, 0x0BBE}), "sa");
  EXPECT_EQ(TamilIpa({0x0BB9, 0x0BBE}), "ha");
}

TEST_F(IndicG2PTest, TamilSpecialLiquids) {
  // ழ -> ɻ (Tamil's famous retroflex approximant).
  std::string ipa = TamilIpa({0x0BA4, 0x0BAE, 0x0BBF, 0x0BB4, 0x0BCD});
  EXPECT_NE(ipa.find("ɻ"), std::string::npos);
}

TEST_F(IndicG2PTest, TamilChaPositional) {
  // ச: initial -> tʃ, intervocalic -> s.
  std::string initial = TamilIpa({0x0B9A, 0x0BBE});
  EXPECT_EQ(initial.substr(0, 3), "tʃ");  // tʃ = 't' + 2-byte ʃ
  std::string medial = TamilIpa({0x0B85, 0x0B9A, 0x0BBE});
  EXPECT_NE(medial.find("s"), std::string::npos);
}

TEST_F(IndicG2PTest, TamilRejectsForeignCodePoints) {
  EXPECT_FALSE(tamil_->ToPhonemes("abc").ok());
}

}  // namespace
}  // namespace lexequal::g2p
