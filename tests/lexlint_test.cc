// Fixture-driven tests for the project linter: each rule family gets
// a tiny generated source tree containing one violation, and we
// assert that Run() reports exactly that diagnostic with a nonzero
// exit code — and that the clean variant passes.

#include "tools/lexlint/lexlint.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace lexequal::lexlint {
namespace {

namespace fs = std::filesystem;

class LexlintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("lexlint_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(root_);
    fs::create_directories(root_ / "src");
  }

  void TearDown() override { fs::remove_all(root_); }

  void WriteFile(const std::string& rel, const std::string& text) {
    const fs::path path = root_ / rel;
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary);
    out << text;
  }

  // Runs the given rules (empty = all) over the fixture tree.
  int Lint(std::vector<std::string> rules,
           std::vector<Diagnostic>* diags) {
    Options options;
    options.src_dir = (root_ / "src").string();
    options.root_dir = root_.string();
    options.rules = std::move(rules);
    std::ostringstream log;
    const int rc = lexlint::Run(options, diags, log);
    if (rc == 2) ADD_FAILURE() << "lexlint usage error: " << log.str();
    return rc;
  }

  static std::string Render(const std::vector<Diagnostic>& diags) {
    std::string out;
    for (const auto& d : diags) out += d.ToString() + "\n";
    return out;
  }

  fs::path root_;
};

TEST_F(LexlintTest, CleanTreeExitsZero) {
  WriteFile("src/common/util.h", "#pragma once\nint Add(int a, int b);\n");
  WriteFile("src/text/norm.cc",
            "#include \"common/util.h\"\nint N() { return Add(1, 2); }\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({}, &diags), 0) << Render(diags);
  EXPECT_TRUE(diags.empty());
}

TEST_F(LexlintTest, LayeringBackEdgeIsFlagged) {
  WriteFile("src/common/oops.cc", "#include \"engine/database.h\"\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"layering"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_EQ(diags[0].rule, "layering");
  EXPECT_EQ(diags[0].file, "src/common/oops.cc");
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_NE(diags[0].message.find("back-edge"), std::string::npos);
}

TEST_F(LexlintTest, LayeringAllowsDeclaredDeps) {
  WriteFile("src/engine/exec.cc",
            "#include \"storage/page.h\"\n#include \"match/matcher.h\"\n");
  WriteFile("src/phonetic/key.cc", "#include \"text/utf8.h\"\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"layering"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, LayeringRejectsUndeclaredLayer) {
  WriteFile("src/telemetry/t.cc", "int x;\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"layering"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_NE(diags[0].message.find("not a declared layer"),
            std::string::npos);
}

TEST_F(LexlintTest, LayeringIgnoresCommentedIncludes) {
  WriteFile("src/common/doc.cc",
            "// #include \"engine/database.h\"\n"
            "/* #include \"sql/parser.h\" */\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"layering"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, NakedFetchPageIsFlagged) {
  WriteFile("src/index/scan.cc",
            "void F(BufferPool* pool) {\n"
            "  auto page = pool->FetchPage(7);\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"bufpool"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_EQ(diags[0].rule, "bufpool");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("PageGuard"), std::string::npos);
}

TEST_F(LexlintTest, BufpoolExemptsPoolAndGuard) {
  WriteFile("src/storage/buffer_pool.cc",
            "void F() { FetchPage(1); NewPage(); UnpinPage(1, true); }\n");
  WriteFile("src/storage/page_guard.cc",
            "void G(BufferPool* p) { p->FetchPage(2); }\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"bufpool"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, BufpoolIgnoresMentionsInCommentsAndStrings) {
  WriteFile("src/engine/doc.cc",
            "// callers must not FetchPage( directly\n"
            "const char* kMsg = \"NewPage( failed\";\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"bufpool"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, DirectEditDistanceInEngineIsFlagged) {
  WriteFile("src/engine/verify.cc",
            "bool F(const P& a, const P& b, const CostModel& c) {\n"
            "  return BoundedEditDistance(a, b, c, 1.0) <= 1.0;\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"kernel"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_EQ(diags[0].rule, "kernel");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("MatchKernel"), std::string::npos);
}

TEST_F(LexlintTest, KernelExemptsMatchIndexDataset) {
  WriteFile("src/match/edit_distance.cc",
            "double F(const P& a, const P& b, const CostModel& c) {\n"
            "  return EditDistance(a, b, c);\n"
            "}\n");
  WriteFile("src/index/bktree.cc",
            "double G(const P& a, const P& b, const CostModel& c) {\n"
            "  return EditDistance(a, b, c);\n"
            "}\n");
  WriteFile("src/dataset/metrics.cc",
            "double H(const P& a, const P& b, const CostModel& c) {\n"
            "  return BoundedEditDistance(a, b, c, 2.0);\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"kernel"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, KernelIgnoresIdentifierPrefixesAndComments) {
  WriteFile("src/sql/doc.cc",
            "// the kernel replaces EditDistance( here\n"
            "double MyEditDistance(int x);\n"
            "double y = MyEditDistance(3);\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"kernel"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, SimdVendorHeaderOutsideSimdFilesIsFlagged) {
  WriteFile("src/engine/fast_verify.cc",
            "#include <immintrin.h>\n"
            "int F() { return 0; }\n");
  WriteFile("src/match/match_kernel.cc",
            "#include <arm_neon.h>\n"
            "int G() { return 0; }\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"kernel"}, &diags), 1);
  ASSERT_EQ(diags.size(), 2u) << Render(diags);
  EXPECT_EQ(diags[0].rule, "kernel");
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_NE(diags[0].message.find("simd_dp.h"), std::string::npos);
  EXPECT_NE(diags[1].message.find("arm_neon.h"), std::string::npos);
}

TEST_F(LexlintTest, RawIntrinsicOutsideSimdFilesIsFlagged) {
  WriteFile("src/sql/hot_path.cc",
            "void F(void* p, void* q) {\n"
            "  _mm256_storeu_si256(p, _mm256_loadu_si256(q));\n"
            "}\n");
  WriteFile("src/index/neon_scan.cc",
            "void G(unsigned short* d, const unsigned short* a) {\n"
            "  vst1q_u16(d, vaddq_u16(vld1q_u16(a), vld1q_u16(a)));\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"kernel"}, &diags), 1);
  EXPECT_GE(diags.size(), 2u) << Render(diags);
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.rule, "kernel");
    EXPECT_NE(d.message.find("lane-kernel seam"), std::string::npos);
  }
}

TEST_F(LexlintTest, SimdBackendFilesMayUseIntrinsics) {
  WriteFile("src/match/simd_dp_avx2.cc",
            "#include <immintrin.h>\n"
            "void F(void* p) { _mm256_storeu_si256(p, _mm256_setzero_si256()); }\n");
  WriteFile("src/match/simd_dp_neon.cc",
            "#include <arm_neon.h>\n"
            "unsigned short G(const unsigned short* a) {\n"
            "  return vmaxvq_u16(vld1q_u16(a));\n"
            "}\n");
  // Lookalike identifiers and comments must not trip the token scan.
  WriteFile("src/engine/doc.cc",
            "// _mm256_add_epi16( is only allowed under src/match/simd*\n"
            "int my_mm256_helper(int x);\n"
            "int y = my_mm256_helper(2);\n"
            "int vmax_len(int n);\n"
            "int z = vmax_len(3);\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"kernel"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, LatchFunnelOutsideLockedFunctionIsFlagged) {
  WriteFile("src/engine/checkpoint.cc",
            "Status Engine::Checkpoint() {\n"
            "  return SaveCatalogLocked();\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"latch"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_EQ(diags[0].rule, "latch");
  EXPECT_EQ(diags[0].file, "src/engine/checkpoint.cc");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("Checkpoint"), std::string::npos);
  EXPECT_NE(diags[0].message.find("*Locked"), std::string::npos);
}

TEST_F(LexlintTest, LatchFunnelInsideLockedFunctionIsClean) {
  WriteFile("src/engine/ddl.cc",
            "Status Engine::CreateTableLocked(Schema schema) {\n"
            "  LEXEQUAL_RETURN_IF_ERROR(catalog_.AddTable(MakeInfo()));\n"
            "  auto persist = [&] { return SaveCatalogLocked(); };\n"
            "  return persist();\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"latch"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, LatchIgnoresDeclarationsAndDefinitions) {
  WriteFile("src/engine/engine_decl.h",
            "class Engine {\n"
            " private:\n"
            "  Status SaveCatalogLocked();\n"
            "  Status LoadCatalogLocked();\n"
            "};\n");
  WriteFile("src/engine/engine_impl.cc",
            "Status Engine::SaveCatalogLocked() {\n"
            "  return Status::OK();\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"latch"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, LatchAppliesOnlyToTheEngineModule) {
  WriteFile("src/sql/mirror.cc",
            "Status F() { return SaveCatalogLocked(); }\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"latch"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, LatchSuppressionWithReasonSilencesFinding) {
  WriteFile("src/engine/open.cc",
            "Status Engine::Bootstrap() {\n"
            "  // lexlint:allow(latch): construction precedes sharing\n"
            "  return LoadCatalogLocked();\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"latch"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, LatchCatchesUnlatchedCatalogInsertion) {
  WriteFile("src/engine/fastpath.cc",
            "Status Engine::RegisterTable(std::unique_ptr<TableInfo> t) {\n"
            "  return catalog_.AddTable(std::move(t));\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"latch"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_EQ(diags[0].rule, "latch");
  EXPECT_NE(diags[0].message.find("catalog_.AddTable"), std::string::npos);
}

TEST_F(LexlintTest, LatchCatchesRecordUnderTheLatch) {
  // The inverse funnel: statement/slowlog recording inside a *Locked
  // function runs under the engine latch — record-after-release says
  // it must not.
  WriteFile("src/engine/hot.cc",
            "Result<QueryResult> Engine::QueryLocked(const Req& req) {\n"
            "  stmt_stats_.Record(MakeRecord(req));\n"
            "  return Run(req);\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"latch"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_EQ(diags[0].rule, "latch");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("QueryLocked"), std::string::npos);
  EXPECT_NE(diags[0].message.find("record-after-release"),
            std::string::npos);
}

TEST_F(LexlintTest, LatchCatchesAccessorRecordUnderTheLatch) {
  WriteFile("src/engine/hot2.cc",
            "void Session::ExecuteLocked(const Req& req) {\n"
            "  engine_->slow_query_log()->Record(MakeEntry(req));\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"latch"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_NE(diags[0].message.find("slow_query_log"), std::string::npos);
}

TEST_F(LexlintTest, LatchAllowsRecordAfterRelease) {
  // Recording from a plain (non-Locked) function is the contract;
  // funnels and Record calls may coexist in one file.
  WriteFile("src/engine/session_like.cc",
            "Result<QueryResult> Session::Execute(const Req& req) {\n"
            "  Result<QueryResult> result = RunLatched(req);\n"
            "  stmt_stats_.Record(MakeRecord(req));\n"
            "  slow_log_.Record(MakeEntry(req));\n"
            "  return result;\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"latch"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, DiscardedStatusIsFlagged) {
  WriteFile("src/common/io.h", "Status WriteAll(const char* path);\n");
  WriteFile("src/engine/save.cc",
            "void Save() {\n"
            "  WriteAll(\"/tmp/x\");\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"status"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_EQ(diags[0].rule, "status");
  EXPECT_EQ(diags[0].file, "src/engine/save.cc");
  EXPECT_EQ(diags[0].line, 2);
}

TEST_F(LexlintTest, VoidCastDiscardIsFlagged) {
  WriteFile("src/common/io.h", "Status WriteAll(const char* path);\n");
  WriteFile("src/engine/save.cc",
            "void Save() { (void)WriteAll(\"/tmp/x\"); }\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"status"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_NE(diags[0].message.find("(void) cast"), std::string::npos);
}

TEST_F(LexlintTest, HandledStatusIsNotFlagged) {
  WriteFile("src/common/io.h",
            "Status WriteAll(const char* path);\n"
            "Result<int> Parse(const char* s);\n");
  WriteFile("src/engine/save.cc",
            "Status Save() {\n"
            "  Status st = WriteAll(\"/tmp/x\");\n"
            "  if (!st.ok()) return st;\n"
            "  LEXEQUAL_RETURN_IF_ERROR(WriteAll(\"/tmp/y\"));\n"
            "  return WriteAll(\"/tmp/z\");\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"status"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, VoidOverloadDisablesStatusCheck) {
  // A name declared both Status and void is ambiguous textually;
  // the rule must stay quiet rather than guess.
  WriteFile("src/common/io.h",
            "Status Log(const char* m);\nvoid Log(int level);\n");
  WriteFile("src/engine/use.cc", "void F() { Log(\"hi\"); }\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"status"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, BadMetricNameIsFlagged) {
  WriteFile("src/match/m.cc",
            "void F() {\n"
            "  auto* c = reg.GetCounter(\"MatchHits\", \"hits\");\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"metrics"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_EQ(diags[0].rule, "metrics");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("MatchHits"), std::string::npos);
}

TEST_F(LexlintTest, MetricNameOnNextLineIsFound) {
  WriteFile("src/match/m.cc",
            "void F() {\n"
            "  auto* c = reg.GetCounter(\n"
            "      \"lexequal_match_hits\", \"hits\");\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"metrics"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, ComputedMetricNameIsUnlintable) {
  WriteFile("src/match/m.cc",
            "void F(const std::string& n) { reg.GetCounter(n, n); }\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"metrics"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_NE(diags[0].message.find("computed name"), std::string::npos);
}

TEST_F(LexlintTest, ObsModuleIsExemptFromMetricNames) {
  WriteFile("src/obs/registry.cc",
            "void F() { GetCounter(\"whatever\", \"internal\"); }\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"metrics"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, BrokenDocLinkIsFlagged) {
  WriteFile("README.md",
            "Intro.\nSee [design](docs/missing.md) for details.\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"doclinks"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_EQ(diags[0].rule, "doclinks");
  EXPECT_EQ(diags[0].file, "README.md");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("docs/missing.md"), std::string::npos);
}

TEST_F(LexlintTest, BacktickedPathsAndAnchorsAreChecked) {
  WriteFile("src/common/util.h", "#pragma once\n");
  WriteFile("ARCHITECTURE.md",
            "Real: `src/common/util.h`, [self](ARCHITECTURE.md#top),\n"
            "[web](https://example.com), bogus `src/ghost.cc`.\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"doclinks"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_NE(diags[0].message.find("src/ghost.cc"), std::string::npos);
}

TEST_F(LexlintTest, SuppressionWithReasonSilencesFinding) {
  WriteFile("src/common/io.h", "Status WriteAll(const char* path);\n");
  WriteFile("src/engine/save.cc",
            "void Save() {\n"
            "  // lexlint:allow(status): shutdown path, failure logged by callee\n"
            "  WriteAll(\"/tmp/x\");\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"status"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, ReasonlessSuppressionIsItselfAViolation) {
  WriteFile("src/common/io.h", "Status WriteAll(const char* path);\n");
  WriteFile("src/engine/save.cc",
            "void Save() {\n"
            "  // lexlint:allow(status)\n"
            "  WriteAll(\"/tmp/x\");\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"status"}, &diags), 1);
  // The bare marker is reported AND does not suppress the finding.
  ASSERT_EQ(diags.size(), 2u) << Render(diags);
  EXPECT_EQ(diags[0].rule, "suppression");
  EXPECT_EQ(diags[1].rule, "status");
}

TEST_F(LexlintTest, SuppressionForOtherRuleDoesNotApply) {
  WriteFile("src/common/io.h", "Status WriteAll(const char* path);\n");
  WriteFile("src/engine/save.cc",
            "void Save() {\n"
            "  WriteAll(\"/tmp/x\");  // lexlint:allow(bufpool): wrong rule\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"status"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_EQ(diags[0].rule, "status");
}

TEST_F(LexlintTest, UnknownRuleIsUsageError) {
  WriteFile("src/common/x.cc", "int x;\n");
  Options options;
  options.src_dir = (root_ / "src").string();
  options.rules = {"spelling"};
  std::vector<Diagnostic> diags;
  std::ostringstream log;
  EXPECT_EQ(lexlint::Run(options, &diags, log), 2);
  EXPECT_NE(log.str().find("unknown rule"), std::string::npos);
}

TEST_F(LexlintTest, MissingTreeIsUsageError) {
  Options options;
  options.src_dir = (root_ / "no_such_dir").string();
  std::vector<Diagnostic> diags;
  std::ostringstream log;
  EXPECT_EQ(lexlint::Run(options, &diags, log), 2);
}

TEST_F(LexlintTest, ExportModeValidatesPrometheusDump) {
  WriteFile("metrics.txt",
            "# HELP lexequal_match_hits hits\n"
            "# TYPE lexequal_match_hits counter\n"
            "lexequal_match_hits 3\n"
            "# TYPE BadExportName gauge\n"
            "BadExportName 1\n");
  Options options;
  options.export_file = (root_ / "metrics.txt").string();
  std::vector<Diagnostic> diags;
  std::ostringstream log;
  EXPECT_EQ(lexlint::Run(options, &diags, log), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_NE(diags[0].message.find("BadExportName"), std::string::npos);
}

TEST_F(LexlintTest, ExportModeCleanDump) {
  WriteFile("metrics.txt",
            "# TYPE lexequal_match_hits counter\n"
            "lexequal_match_hits 3\n");
  Options options;
  options.export_file = (root_ / "metrics.txt").string();
  std::vector<Diagnostic> diags;
  std::ostringstream log;
  EXPECT_EQ(lexlint::Run(options, &diags, log), 0) << Render(diags);
}

TEST_F(LexlintTest, UndeclaredMetricSubsystemIsFlagged) {
  // Well-formed but off-contract: "statement" is not a declared
  // subsystem (the statement-stats plane registered "stmt").
  WriteFile("src/engine/m.cc",
            "void F() {\n"
            "  reg.GetCounter(\"lexequal_statement_calls\", \"calls\");\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"metrics"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_NE(diags[0].message.find("undeclared subsystem"),
            std::string::npos);
  EXPECT_NE(diags[0].message.find("statement"), std::string::npos);
}

TEST_F(LexlintTest, StmtAndSlowlogSubsystemsAreDeclared) {
  WriteFile("src/engine/m.cc",
            "void F() {\n"
            "  reg.GetCounter(\"lexequal_stmt_recorded\", \"n\");\n"
            "  reg.GetCounter(\"lexequal_slowlog_captured\", \"n\");\n"
            "}\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"metrics"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, ExportModeFlagsUndeclaredSubsystem) {
  WriteFile("metrics.txt",
            "# TYPE lexequal_stmt_recorded counter\n"
            "lexequal_stmt_recorded 5\n"
            "# TYPE lexequal_mystery_things counter\n"
            "lexequal_mystery_things 1\n");
  Options options;
  options.export_file = (root_ / "metrics.txt").string();
  std::vector<Diagnostic> diags;
  std::ostringstream log;
  EXPECT_EQ(lexlint::Run(options, &diags, log), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_NE(diags[0].message.find("mystery"), std::string::npos);
}

TEST_F(LexlintTest, ExportModeEmptyDumpFails) {
  WriteFile("metrics.txt", "nothing registered\n");
  Options options;
  options.export_file = (root_ / "metrics.txt").string();
  std::vector<Diagnostic> diags;
  std::ostringstream log;
  EXPECT_EQ(lexlint::Run(options, &diags, log), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_NE(diags[0].message.find("no '# TYPE'"), std::string::npos);
}

TEST_F(LexlintTest, GuardsFlagsRawMutexOutsideCommon) {
  WriteFile("src/engine/cache.cc",
            "#include <mutex>\n"
            "std::mutex g_mu;\n"
            "void F() { std::lock_guard<std::mutex> lock(g_mu); }\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"guards"}, &diags), 1);
  // Line 2 declares the mutex; line 3 mentions both the adapter and
  // the type again. Every mention is a finding.
  ASSERT_GE(diags.size(), 2u) << Render(diags);
  EXPECT_EQ(diags[0].rule, "guards");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("common::Mutex"), std::string::npos);
}

TEST_F(LexlintTest, GuardsAllowsRawMutexInCommon) {
  WriteFile("src/common/mutex.h",
            "#include <mutex>\n"
            "class Mutex { std::mutex mu_; };\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"guards"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, GuardsIgnoresMutexMentionsInCommentsAndStrings) {
  WriteFile("src/engine/doc.cc",
            "// a std::mutex would be wrong here\n"
            "const char* kMsg = \"std::shared_mutex banned\";\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"guards"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, GuardsFlagsUnannotatedMemberNextToMutex) {
  WriteFile("src/storage/pool.h",
            "class Pool {\n"
            " private:\n"
            "  mutable common::Mutex mu_;\n"
            "  std::vector<int> table_;\n"
            "};\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"guards"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_EQ(diags[0].rule, "guards");
  EXPECT_EQ(diags[0].line, 4);
  EXPECT_NE(diags[0].message.find("'Pool'"), std::string::npos);
  EXPECT_NE(diags[0].message.find("'table_'"), std::string::npos);
  EXPECT_NE(diags[0].message.find("GUARDED_BY"), std::string::npos);
}

TEST_F(LexlintTest, GuardsCleanAnnotatedClassPasses) {
  // Every non-mutex member is guarded, const, atomic, or a function:
  // the shape the whole tree migrated to.
  WriteFile("src/storage/pool.h",
            "class Pool {\n"
            " public:\n"
            "  size_t Size() const EXCLUDES(mu_);\n"
            " private:\n"
            "  size_t VictimLocked() REQUIRES(mu_);\n"
            "  mutable common::SharedMutex mu_;\n"
            "  std::map<int, int> table_ GUARDED_BY(mu_);\n"
            "  uint64_t generation_ GUARDED_BY(mu_) = 0;\n"
            "  Counter* const metric_;\n"
            "  const size_t capacity_;\n"
            "  std::atomic<uint64_t> hits_{0};\n"
            "  static constexpr size_t kShards = 4;\n"
            "};\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"guards"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, GuardsMutexlessClassIsNotChecked) {
  // No lock, no discipline to enforce: plain structs stay unannotated.
  WriteFile("src/engine/req.h",
            "struct Request {\n"
            "  std::string table;\n"
            "  size_t k = 0;\n"
            "};\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"guards"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, GuardsMutexDeclaredAfterMembersStillCounts) {
  // Judgment happens at class close, so declaration order is free.
  WriteFile("src/match/shard.h",
            "struct Shard {\n"
            "  std::list<int> lru;\n"
            "  common::Mutex mu;\n"
            "};\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"guards"}, &diags), 1);
  ASSERT_EQ(diags.size(), 1u) << Render(diags);
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("'lru'"), std::string::npos);
}

TEST_F(LexlintTest, GuardsSuppressionWithReasonSilencesFinding) {
  WriteFile("src/obs/stats.h",
            "class Stats {\n"
            "  common::Mutex mu_;\n"
            "  // lexlint:allow(guards): set once in the constructor before sharing\n"
            "  std::unique_ptr<int[]> slots_;\n"
            "};\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"guards"}, &diags), 0) << Render(diags);
}

TEST_F(LexlintTest, GuardsNestedClassesJudgedIndependently) {
  // The inner struct owns the lock and is fully annotated; the outer
  // class owns no lock, so its bare members pass.
  WriteFile("src/match/cache.h",
            "class Cache {\n"
            "  struct Shard {\n"
            "    common::Mutex mu;\n"
            "    std::list<int> lru GUARDED_BY(mu);\n"
            "  };\n"
            "  Shard shards_[16];\n"
            "  size_t capacity_ = 0;\n"
            "};\n");
  std::vector<Diagnostic> diags;
  EXPECT_EQ(Lint({"guards"}, &diags), 0) << Render(diags);
}

}  // namespace
}  // namespace lexequal::lexlint
