// Round-trip tests: English name -> phonemes -> Indic orthography ->
// Indic G2P -> phonemes. The round trip must stay *phonetically
// close* (the dataset builder depends on this) while being lossy in
// the script-specific ways documented in render_indic.h.

#include <gtest/gtest.h>

#include "g2p/g2p.h"
#include "g2p/render_indic.h"
#include "phonetic/cluster.h"
#include "text/language.h"

namespace lexequal::g2p {
namespace {

using phonetic::ClusterTable;
using phonetic::PhonemeString;
using text::Language;

const G2PRegistry& Reg() { return G2PRegistry::Default(); }

// Cluster-level edit distance: substitutions inside a cluster are
// free, everything else costs 1. (A miniature of the match module's
// clustered cost model with intra-cluster cost 0, local to this test
// so the g2p layer is testable on its own.)
int ClusterEditDistance(const PhonemeString& a, const PhonemeString& b) {
  const ClusterTable& t = ClusterTable::Default();
  const size_t la = a.size();
  const size_t lb = b.size();
  std::vector<int> prev(lb + 1);
  std::vector<int> cur(lb + 1);
  for (size_t j = 0; j <= lb; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= la; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= lb; ++j) {
      int sub = t.SameCluster(a[i - 1], b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + sub});
    }
    std::swap(prev, cur);
  }
  return prev[lb];
}

class RenderRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RenderRoundTripTest, DevanagariStaysPhoneticallyClose) {
  const char* name = GetParam();
  Result<PhonemeString> eng = Reg().Transform(name, Language::kEnglish);
  ASSERT_TRUE(eng.ok()) << eng.status();
  Result<std::string> deva = RenderDevanagari(eng.value());
  ASSERT_TRUE(deva.ok()) << name << ": " << deva.status();
  Result<PhonemeString> back = Reg().Transform(deva.value(),
                                               Language::kHindi);
  ASSERT_TRUE(back.ok()) << name << ": " << back.status();
  // Within ~1/3 of the shorter length in cluster-level edits — the
  // regime where LexEQUAL's recommended threshold (0.25-0.35) matches.
  const size_t min_len = std::min(eng.value().size(), back.value().size());
  EXPECT_LE(ClusterEditDistance(eng.value(), back.value()),
            std::max<int>(1, static_cast<int>(0.35 * min_len)))
      << name << " eng=" << eng.value().ToIpa()
      << " back=" << back.value().ToIpa();
}

TEST_P(RenderRoundTripTest, TamilStaysPhoneticallyClose) {
  const char* name = GetParam();
  Result<PhonemeString> eng = Reg().Transform(name, Language::kEnglish);
  ASSERT_TRUE(eng.ok()) << eng.status();
  Result<std::string> tam = RenderTamil(eng.value());
  ASSERT_TRUE(tam.ok()) << name << ": " << tam.status();
  Result<PhonemeString> back = Reg().Transform(tam.value(),
                                               Language::kTamil);
  ASSERT_TRUE(back.ok()) << name << ": " << back.status();
  const size_t min_len = std::min(eng.value().size(), back.value().size());
  EXPECT_LE(ClusterEditDistance(eng.value(), back.value()),
            std::max<int>(1, static_cast<int>(0.35 * min_len)))
      << name << " eng=" << eng.value().ToIpa()
      << " back=" << back.value().ToIpa();
}

INSTANTIATE_TEST_SUITE_P(
    Names, RenderRoundTripTest,
    ::testing::Values("Nehru", "Kumar", "Sharma", "Lakshmi", "Ganesh",
                      "Meena", "Smith", "Johnson", "Miller", "Davis",
                      "Anderson", "Taylor", "Hydrogen", "Madras",
                      "Kaveri", "Arjun", "Patel", "Banerjee"));

TEST(RenderIndicTest, DevanagariUsesDevanagariBlock) {
  Result<PhonemeString> eng = Reg().Transform("Nehru", Language::kEnglish);
  ASSERT_TRUE(eng.ok());
  Result<std::string> deva = RenderDevanagari(eng.value());
  ASSERT_TRUE(deva.ok());
  EXPECT_EQ(text::DetectScript(deva.value()), text::Script::kDevanagari);
}

TEST(RenderIndicTest, TamilUsesTamilBlock) {
  Result<PhonemeString> eng = Reg().Transform("Nehru", Language::kEnglish);
  ASSERT_TRUE(eng.ok());
  Result<std::string> tam = RenderTamil(eng.value());
  ASSERT_TRUE(tam.ok());
  EXPECT_EQ(text::DetectScript(tam.value()), text::Script::kTamil);
}

TEST(RenderIndicTest, TamilLosesVoicing) {
  // "Bob": initial b renders as ப which reads back voiceless — the
  // canonical Tamil-script information loss.
  Result<PhonemeString> eng = Reg().Transform("Bob", Language::kEnglish);
  ASSERT_TRUE(eng.ok());
  Result<std::string> tam = RenderTamil(eng.value());
  ASSERT_TRUE(tam.ok());
  Result<PhonemeString> back = Reg().Transform(tam.value(),
                                               Language::kTamil);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value()[0], phonetic::Phoneme::kP);
  // But p and b share a cluster, so clustered matching absorbs it.
  EXPECT_TRUE(
      ClusterTable::Default().SameCluster(eng.value()[0], back.value()[0]));
}

TEST(RegistryTest, DefaultSupportsEightLanguages) {
  EXPECT_TRUE(Reg().Supports(Language::kEnglish));
  EXPECT_TRUE(Reg().Supports(Language::kHindi));
  EXPECT_TRUE(Reg().Supports(Language::kTamil));
  EXPECT_TRUE(Reg().Supports(Language::kGreek));
  EXPECT_TRUE(Reg().Supports(Language::kFrench));
  EXPECT_TRUE(Reg().Supports(Language::kSpanish));
  EXPECT_TRUE(Reg().Supports(Language::kArabic));
  EXPECT_TRUE(Reg().Supports(Language::kJapanese));
  EXPECT_FALSE(Reg().Supports(Language::kUnknown));
}

TEST(RegistryTest, NoResourceForUnresolvableLanguage) {
  // Untagged text with no detectable script has no converter.
  Result<PhonemeString> r = Reg().Transform("123", Language::kUnknown);
  EXPECT_TRUE(r.status().IsNoResource());
}

TEST(RegistryTest, AutoDetectsLanguageFromScript) {
  // Untagged Devanagari routes to the Hindi converter.
  Result<PhonemeString> eng = Reg().Transform("Nehru", Language::kEnglish);
  ASSERT_TRUE(eng.ok());
  Result<std::string> deva = RenderDevanagari(eng.value());
  ASSERT_TRUE(deva.ok());
  Result<PhonemeString> r =
      Reg().Transform(deva.value(), Language::kUnknown);
  EXPECT_TRUE(r.ok()) << r.status();
}

}  // namespace
}  // namespace lexequal::g2p
