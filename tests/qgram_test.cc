#include "match/qgram.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "match/cost_model.h"
#include "match/edit_distance.h"

namespace lexequal::match {
namespace {

using phonetic::kPhonemeCount;
using phonetic::Phoneme;
using phonetic::PhonemeString;
using P = Phoneme;

TEST(QGramTest, GramCountIsNPlusQMinusOne) {
  PhonemeString s({P::kN, P::kE, P::kR, P::kU});
  for (int q = 1; q <= 4; ++q) {
    EXPECT_EQ(PositionalQGrams(s, q).size(), s.size() + q - 1)
        << "q=" << q;
  }
}

TEST(QGramTest, PositionsAreOneBasedAndDense) {
  PhonemeString s({P::kN, P::kE, P::kR});
  std::vector<PositionalQGram> grams = PositionalQGrams(s, 2);
  ASSERT_EQ(grams.size(), 4u);
  for (size_t i = 0; i < grams.size(); ++i) {
    EXPECT_EQ(grams[i].pos, i + 1);
  }
}

TEST(QGramTest, PaddingSentinelsAppear) {
  PhonemeString s({P::kN});
  std::vector<PositionalQGram> grams = PositionalQGrams(s, 3);
  // ◁◁n, ◁n▷, n▷▷ — 3 grams.
  ASSERT_EQ(grams.size(), 3u);
  const uint64_t n_code = static_cast<uint8_t>(P::kN);
  EXPECT_EQ(grams[0].gram,
            (0xFFull << 16) | (0xFFull << 8) | n_code);
  EXPECT_EQ(grams[2].gram,
            (n_code << 16) | (0xFEull << 8) | 0xFE);
}

TEST(QGramTest, EmptyStringHasOnlyPaddingGrams) {
  PhonemeString empty;
  EXPECT_EQ(PositionalQGrams(empty, 2).size(), 1u);  // ◁▷
  EXPECT_TRUE(PositionalQGrams(empty, 1).empty());
}

TEST(QGramTest, IdenticalStringsShareAllGrams) {
  PhonemeString s({P::kN, P::kE, P::kR, P::kU});
  std::vector<PositionalQGram> a = PositionalQGrams(s, 2);
  std::vector<PositionalQGram> b = PositionalQGrams(s, 2);
  SortQGrams(&a);
  SortQGrams(&b);
  EXPECT_GE(CountCloseMatches(a, b, 0.0),
            static_cast<int>(s.size() + 1));
}

TEST(QGramTest, PositionFilterRejectsDistantMatches) {
  // Same grams but shifted far apart must not count at small k.
  PhonemeString a({P::kN, P::kE, P::kA, P::kA, P::kA, P::kA, P::kA});
  PhonemeString b({P::kA, P::kA, P::kA, P::kA, P::kA, P::kN, P::kE});
  std::vector<PositionalQGram> ga = PositionalQGrams(a, 2);
  std::vector<PositionalQGram> gb = PositionalQGrams(b, 2);
  SortQGrams(&ga);
  SortQGrams(&gb);
  const int close = CountCloseMatches(ga, gb, 1.0);
  const int far = CountCloseMatches(ga, gb, 10.0);
  EXPECT_LT(close, far);
}

TEST(QGramTest, LengthFilter) {
  EXPECT_TRUE(PassesLengthFilter(5, 7, 2.0));
  EXPECT_FALSE(PassesLengthFilter(5, 8, 2.0));
  EXPECT_TRUE(PassesLengthFilter(5, 5, 0.0));
}

TEST(QGramTest, CountFilterFormula) {
  // max(|a|,|b|) - 1 - (k-1)q.
  EXPECT_DOUBLE_EQ(CountFilterMinMatches(10, 8, 2.0, 3), 10 - 1 - 3);
  EXPECT_DOUBLE_EQ(CountFilterMinMatches(4, 4, 1.0, 2), 3.0);
}

// The core guarantee (paper §5.2): the filters never dismiss a true
// match under unit-cost edit distance.
TEST(QGramTest, NoFalseDismissalsProperty) {
  Random rng(99);
  LevenshteinCost cost;
  int within = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    // Generate near strings: mutate a base string a few times.
    size_t len = 3 + rng.Uniform(10);
    std::vector<Phoneme> base;
    for (size_t i = 0; i < len; ++i) {
      base.push_back(static_cast<Phoneme>(rng.Uniform(kPhonemeCount)));
    }
    std::vector<Phoneme> mutated = base;
    int edits = static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<Phoneme>(rng.Uniform(kPhonemeCount));
          break;
        case 1:
          mutated.erase(mutated.begin() + pos);
          break;
        default:
          mutated.insert(
              mutated.begin() + pos,
              static_cast<Phoneme>(rng.Uniform(kPhonemeCount)));
      }
    }
    PhonemeString a(base);
    PhonemeString b(mutated);
    const double k = 2.0;
    const double dist = EditDistance(a, b, cost);
    if (dist <= k) {
      ++within;
      EXPECT_TRUE(PassesQGramFilters(a, b, k, 2))
          << a.ToIpa() << " vs " << b.ToIpa() << " dist=" << dist;
      EXPECT_TRUE(PassesQGramFilters(a, b, k, 3))
          << a.ToIpa() << " vs " << b.ToIpa() << " dist=" << dist;
    }
  }
  EXPECT_GT(within, 300);  // the sweep must exercise the guarantee
}

TEST(QGramTest, FiltersRejectGrosslyDifferentStrings) {
  PhonemeString a({P::kN, P::kE, P::kR, P::kU});
  PhonemeString b({P::kS, P::kM, P::kIh, P::kThF, P::kS, P::kM, P::kIh});
  EXPECT_FALSE(PassesQGramFilters(a, b, 1.0, 2));
}

TEST(QGramTest, FilterSelectivityOnSimilarStrings) {
  // neru vs nehru passes (distance 1).
  PhonemeString neru({P::kN, P::kE, P::kR, P::kU});
  PhonemeString nehru({P::kN, P::kE, P::kH, P::kR, P::kU});
  EXPECT_TRUE(PassesQGramFilters(neru, nehru, 1.0, 2));
}

}  // namespace
}  // namespace lexequal::match
