// Session isolation: many Sessions share one Engine, but everything a
// client can set or read back — option defaults, \stats, \trace — is
// private to its session. These tests pin the contract the shell's
// \session command and the concurrency bench both rely on.

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>

#include "engine/session.h"
#include "text/utf8.h"

namespace lexequal::engine {
namespace {

using text::Language;
using text::TaggedString;

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_session_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
    auto db = Engine::Open(path_.string(), 512);
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(db).value();

    Schema schema({
        {"author", ValueType::kString, std::nullopt},
        {"author_phon", ValueType::kString, 0},
    });
    ASSERT_TRUE(db_->CreateTable("books", schema).ok());
    const std::string nehru_hi =
        text::EncodeUtf8({0x0928, 0x0947, 0x0939, 0x0930, 0x0941});
    for (const auto& [author, lang] :
         std::vector<std::pair<std::string, Language>>{
             {"Nehru", Language::kEnglish},
             {nehru_hi, Language::kHindi},
             {"Nero", Language::kEnglish},
             {"Smith", Language::kEnglish},
         }) {
      Tuple values{Value::String(author, lang)};
      ASSERT_TRUE(db_->Insert("books", values).ok());
    }
    ASSERT_TRUE(db_->CreateIndex({.kind = IndexSpec::Kind::kQGram,
                                  .table = "books",
                                  .column = "author_phon",
                                  .q = 2}).ok());
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove(path_);
  }

  static QueryRequest NehruSelect() {
    return QueryRequest::ThresholdSelect(
        "books", "author", TaggedString("Nehru", Language::kEnglish));
  }

  std::filesystem::path path_;
  std::unique_ptr<Engine> db_;
};

TEST_F(SessionTest, DefaultOptionsAreIndependentPerSession) {
  Session loose = db_->CreateSession();
  Session strict = db_->CreateSession();

  LexEqualQueryOptions loose_opts;
  loose_opts.match.threshold = 0.3;  // admits the cross-script forms
  loose_opts.match.intra_cluster_cost = 0.25;
  loose_opts.hints.plan = LexEqualPlan::kNaiveUdf;
  loose.set_default_options(loose_opts);
  LexEqualQueryOptions strict_opts;
  strict_opts.match.threshold = 0.0;  // exact phonemic equality only
  strict_opts.hints.plan = LexEqualPlan::kNaiveUdf;
  strict.set_default_options(strict_opts);

  // Same request object, no per-request options: each session falls
  // back to ITS defaults, and the two answers differ.
  const QueryRequest req = NehruSelect();
  Result<QueryResult> wide = loose.Execute(req);
  ASSERT_TRUE(wide.ok()) << wide.status();
  Result<QueryResult> narrow = strict.Execute(req);
  ASSERT_TRUE(narrow.ok()) << narrow.status();
  EXPECT_GE(wide->rows.size(), 2u);  // Nehru + the Hindi form at least
  EXPECT_LT(narrow->rows.size(), wide->rows.size());

  // Setting one session's defaults never leaked into the other.
  EXPECT_EQ(loose.default_options().match.threshold, 0.3);
  EXPECT_EQ(strict.default_options().match.threshold, 0.0);
}

TEST_F(SessionTest, RequestOverrideDoesNotStickToSessionDefaults) {
  Session session = db_->CreateSession();
  QueryRequest req = NehruSelect();
  LexEqualQueryOptions opts;
  opts.match.threshold = 0.5;
  opts.hints.plan = LexEqualPlan::kQGramFilter;
  req.options = opts;
  Result<QueryResult> result = session.Execute(req);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.plan, LexEqualPlan::kQGramFilter);
  // The override was per-request: the session defaults are untouched.
  EXPECT_EQ(session.default_options().match.threshold,
            LexEqualQueryOptions().match.threshold);
  EXPECT_EQ(session.default_options().hints.plan, LexEqualPlan::kAuto);
}

TEST_F(SessionTest, LastQueryStatsDoNotBleedBetweenSessions) {
  Session a = db_->CreateSession();
  Session b = db_->CreateSession();

  QueryRequest naive = NehruSelect();
  LexEqualQueryOptions naive_opts;
  naive_opts.hints.plan = LexEqualPlan::kNaiveUdf;
  naive.options = naive_opts;
  Result<QueryResult> ra = a.Execute(naive);
  ASSERT_TRUE(ra.ok()) << ra.status();

  QueryRequest qgram = NehruSelect();
  LexEqualQueryOptions qgram_opts;
  qgram_opts.hints.plan = LexEqualPlan::kQGramFilter;
  qgram.options = qgram_opts;
  Result<QueryResult> rb = b.Execute(qgram);
  ASSERT_TRUE(rb.ok()) << rb.status();

  // Each session's \stats reflects its own last query, and matches the
  // copy that rode back in the result.
  EXPECT_EQ(a.LastQueryStats().plan, LexEqualPlan::kNaiveUdf);
  EXPECT_EQ(b.LastQueryStats().plan, LexEqualPlan::kQGramFilter);
  EXPECT_EQ(a.LastQueryStats().results, ra->stats.results);
  EXPECT_EQ(b.LastQueryStats().results, rb->stats.results);
  EXPECT_EQ(a.LastQueryStats().rows_scanned, ra->stats.rows_scanned);
}

TEST_F(SessionTest, TracingIsPerSession) {
  Session traced = db_->CreateSession();
  Session plain = db_->CreateSession();
  traced.set_tracing(true);

  Result<QueryResult> rt = traced.Execute(NehruSelect());
  ASSERT_TRUE(rt.ok()) << rt.status();
  Result<QueryResult> rp = plain.Execute(NehruSelect());
  ASSERT_TRUE(rp.ok()) << rp.status();

  EXPECT_NE(rt->trace, nullptr);
  EXPECT_NE(traced.LastTrace(), nullptr);
  EXPECT_EQ(rt->trace.get(), traced.LastTrace());
  EXPECT_EQ(rp->trace, nullptr);
  EXPECT_EQ(plain.LastTrace(), nullptr);
  EXPECT_FALSE(plain.tracing());
}

TEST_F(SessionTest, RequestTraceOverrideIsOneShot) {
  Session session = db_->CreateSession();
  QueryRequest req = NehruSelect();
  req.trace = true;
  Result<QueryResult> traced = session.Execute(req);
  ASSERT_TRUE(traced.ok()) << traced.status();
  EXPECT_NE(traced->trace, nullptr);
  EXPECT_FALSE(session.tracing());  // the default never flipped

  Result<QueryResult> plain = session.Execute(NehruSelect());
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ(plain->trace, nullptr);
  // The untraced query is now the most recent one: LastTrace is gone.
  EXPECT_EQ(session.LastTrace(), nullptr);
}

TEST_F(SessionTest, SessionsObserveDdlFromTheSharedEngine) {
  // A session created before a DDL statement sees its effects: the
  // catalog is engine state, not session state.
  Session session = db_->CreateSession();
  Schema schema({
      {"word", ValueType::kString, std::nullopt},
      {"word_phon", ValueType::kString, 0},
  });
  ASSERT_TRUE(db_->CreateTable("late", schema).ok());
  Tuple values{Value::String("Nehru", Language::kEnglish)};
  ASSERT_TRUE(db_->Insert("late", values).ok());

  Result<QueryResult> result = session.Execute(QueryRequest::ThresholdSelect(
      "late", "word", TaggedString("Nehru", Language::kEnglish)));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 1u);
}

TEST_F(SessionTest, MovedSessionKeepsItsState) {
  Session original = db_->CreateSession();
  LexEqualQueryOptions opts;
  opts.match.threshold = 0.4;
  original.set_default_options(opts);
  original.set_tracing(true);
  Result<QueryResult> before = original.Execute(NehruSelect());
  ASSERT_TRUE(before.ok());

  Session moved = std::move(original);
  EXPECT_EQ(moved.engine(), db_.get());
  EXPECT_EQ(moved.default_options().match.threshold, 0.4);
  EXPECT_TRUE(moved.tracing());
  EXPECT_EQ(moved.LastQueryStats().results, before->stats.results);
  Result<QueryResult> after = moved.Execute(NehruSelect());
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->rows.size(), before->rows.size());
}

}  // namespace
}  // namespace lexequal::engine
