// Differential tests for the table-driven MatchKernel
// (match/match_kernel.h) against the reference DP
// (match/edit_distance.h): randomized pairs across every bundled cost
// model and a grid of bounds must agree bit-for-bit, for every kernel
// path (bit-parallel, SIMD lanes, banded, general). The SIMD section
// forces each compiled backend (scalar emulation everywhere, AVX2 /
// NEON where the host reports the ISA) over the same corpus and
// asserts bit-identical costs and decisions, including fixed-point
// edge cases exactly at the threshold boundary. Plus the tight-prune
// regression (same decisions, strictly fewer cells) and the batch
// API contract.

#include "match/match_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "match/edit_distance.h"
#include "match/lexequal.h"
#include "match/simd_dp.h"
#include "phonetic/cluster.h"
#include "phonetic/phoneme_string.h"

namespace lexequal::match {
namespace {

using phonetic::Phoneme;
using phonetic::PhonemeString;

// Random phoneme string over the full dense enum. Length-biased
// toward short names, with a tail past 64 so the unit-cost model
// also exercises the non-bit-parallel fallback.
PhonemeString RandomString(Random* rng, size_t len) {
  PhonemeString s;
  for (size_t i = 0; i < len; ++i) {
    s.Append(static_cast<Phoneme>(
        rng->Uniform(static_cast<uint64_t>(phonetic::kPhonemeCount))));
  }
  return s;
}

size_t RandomLength(Random* rng) {
  const uint64_t bucket = rng->Uniform(100);
  if (bucket < 70) return rng->Uniform(28);        // short names
  if (bucket < 95) return 28 + rng->Uniform(36);   // long names
  return 65 + rng->Uniform(32);                    // past the 64 block
}

struct NamedModel {
  std::string name;
  std::unique_ptr<CostModel> model;
};

// Every bundled cost model, covering the unit (bit-parallel),
// clustered (banded), and feature (general weighted) table shapes.
std::vector<NamedModel> AllModels() {
  const phonetic::ClusterTable& clusters =
      phonetic::ClusterTable::Default();
  std::vector<NamedModel> models;
  models.push_back({"levenshtein", std::make_unique<LevenshteinCost>()});
  for (const double alpha : {0.0, 0.25, 0.5, 1.0}) {
    models.push_back(
        {"clustered_" + std::to_string(alpha) + "_weak",
         std::make_unique<ClusteredCost>(clusters, alpha, true)});
  }
  // intra=1, no weak discount: exactly unit tables -> bit-parallel.
  models.push_back({"clustered_unit",
                    std::make_unique<ClusteredCost>(clusters, 1.0, false)});
  models.push_back({"feature", std::make_unique<FeatureCost>(true)});
  models.push_back({"feature_noweak",
                    std::make_unique<FeatureCost>(false)});
  return models;
}

// One differential check: kernel vs reference, unbounded and across
// a grid of bounds. Returns the reference distance.
double CheckPair(const MatchKernel& kernel, const CostModel& model,
                 const PhonemeString& a, const PhonemeString& b,
                 DpArena* arena, const std::string& context) {
  const double ref = EditDistance(a, b, model);
  // Unbounded: bit-identical.
  EXPECT_EQ(kernel.Distance(a, b, arena), ref) << context;

  const double minlen =
      static_cast<double>(std::min(a.size(), b.size()));
  const double bounds[] = {0.0,          0.25 * minlen, 1.0 * minlen,
                           ref,          ref - 0.1,     ref + 0.1};
  for (const double bound : bounds) {
    if (bound < 0.0) continue;
    const double got = kernel.BoundedDistance(a, b, bound, arena);
    if (ref <= bound) {
      // In-bound distances come back exact.
      EXPECT_EQ(got, ref) << context << " bound=" << bound;
    } else {
      EXPECT_GT(got, bound) << context << " bound=" << bound
                            << " ref=" << ref;
    }
  }
  return ref;
}

TEST(MatchKernelDifferentialTest, RandomPairsMatchReferenceExactly) {
  Random rng(0x5eed0001);
  const std::vector<NamedModel> models = AllModels();
  DpArena arena;
  // ~10k random pairs, each checked under every model and the bound
  // grid above — all three kernel paths run many thousands of times.
  constexpr int kPairsPerModel = 1200;
  for (const NamedModel& nm : models) {
    const MatchKernel kernel(CompiledCostModel::Compile(*nm.model));
    for (int i = 0; i < kPairsPerModel; ++i) {
      const PhonemeString a = RandomString(&rng, RandomLength(&rng));
      const PhonemeString b = RandomString(&rng, RandomLength(&rng));
      CheckPair(kernel, *nm.model, a, b, &arena,
                nm.name + " pair#" + std::to_string(i));
    }
  }
  // Sanity: the sweep exercised every kernel path.
  EXPECT_GT(arena.counters.bitparallel_pairs, 0u);
  EXPECT_GT(arena.counters.banded_pairs, 0u);
  EXPECT_GT(arena.counters.general_pairs, 0u);
}

TEST(MatchKernelDifferentialTest, EmptyAndDegenerateCases) {
  const std::vector<NamedModel> models = AllModels();
  Random rng(0x5eed0002);
  DpArena arena;
  const PhonemeString empty;
  const PhonemeString one = RandomString(&rng, 1);
  const PhonemeString mid = RandomString(&rng, 17);
  const PhonemeString big = RandomString(&rng, 70);
  for (const NamedModel& nm : models) {
    const MatchKernel kernel(CompiledCostModel::Compile(*nm.model));
    for (const PhonemeString* x : {&empty, &one, &mid, &big}) {
      for (const PhonemeString* y : {&empty, &one, &mid, &big}) {
        CheckPair(kernel, *nm.model, *x, *y, &arena, nm.name);
      }
    }
    // Identical strings are distance 0 under every bundled model.
    EXPECT_EQ(kernel.Distance(mid, mid, &arena), 0.0) << nm.name;
    EXPECT_EQ(kernel.BoundedDistance(mid, mid, 0.0, &arena), 0.0)
        << nm.name;
  }
}

TEST(MatchKernelDifferentialTest, BandEdgeLengthGaps) {
  // Pairs whose length gap sits exactly at / just past what the bound
  // affords: the banded path must clip rows to an empty feasible
  // window without reading outside it.
  const std::vector<NamedModel> models = AllModels();
  Random rng(0x5eed0003);
  DpArena arena;
  for (const NamedModel& nm : models) {
    const MatchKernel kernel(CompiledCostModel::Compile(*nm.model));
    for (const auto& [la, lb] : std::vector<std::pair<size_t, size_t>>{
             {1, 40}, {40, 1}, {10, 40}, {63, 65}, {64, 64}, {65, 66},
             {5, 6},  {32, 48}}) {
      const PhonemeString a = RandomString(&rng, la);
      const PhonemeString b = RandomString(&rng, lb);
      CheckPair(kernel, *nm.model, a, b, &arena,
                nm.name + " la=" + std::to_string(la) +
                    " lb=" + std::to_string(lb));
    }
  }
}

TEST(MatchKernelTest, TightPruneDecidesIdenticallyWithFewerCells) {
  // Satellite regression for the pessimistic prune: the legacy bound
  // priced the remaining length gap at the *global* MinEditCost (0.5
  // with the weak-phoneme discount) even when no remaining phoneme is
  // that cheap. The tight per-phoneme suffix bound must never change
  // a decision and must visit strictly fewer cells on strings with no
  // weak phonemes.
  const phonetic::ClusterTable& clusters =
      phonetic::ClusterTable::Default();
  const ClusteredCost model(clusters, 0.25, true);
  auto compiled = CompiledCostModel::Compile(model);
  const MatchKernel tight(compiled, MatchKernelOptions{true});
  const MatchKernel legacy(compiled, MatchKernelOptions{false});
  ASSERT_LT(compiled->min_indel(), 1.0);  // discount present in tables

  // Strings over non-weak phonemes only: every real ins/del costs 1,
  // twice what the legacy bound assumes.
  Random rng(0x5eed0004);
  DpArena tight_arena;
  DpArena legacy_arena;
  int decisions = 0;
  for (int i = 0; i < 400; ++i) {
    PhonemeString a;
    PhonemeString b;
    for (size_t k = RandomLength(&rng); k > 0; --k) {
      a.Append(static_cast<Phoneme>(rng.Uniform(20)));  // low ids: vowels/stops
    }
    for (size_t k = RandomLength(&rng); k > 0; --k) {
      b.Append(static_cast<Phoneme>(rng.Uniform(20)));
    }
    if (a.empty() || b.empty()) continue;
    const double bound =
        0.25 * static_cast<double>(std::min(a.size(), b.size()));
    const double dt = tight.BoundedDistance(a, b, bound, &tight_arena);
    const double dl = legacy.BoundedDistance(a, b, bound, &legacy_arena);
    EXPECT_EQ(dt <= bound, dl <= bound) << "pair#" << i;
    if (dt <= bound) {
      EXPECT_EQ(dt, dl) << "pair#" << i;
    }
    ++decisions;
  }
  ASSERT_GT(decisions, 300);
  EXPECT_LT(tight_arena.counters.dp_cells,
            legacy_arena.counters.dp_cells);
}

TEST(MatchKernelTest, MatchBatchAgreesWithScalarAndIsAscending) {
  LexEqualMatcher matcher;  // default threshold 0.25, clustered costs
  Random rng(0x5eed0005);
  std::vector<PhonemeString> pool;
  for (int i = 0; i < 300; ++i) {
    pool.push_back(RandomString(&rng, RandomLength(&rng)));
  }
  const PhonemeString probe = RandomString(&rng, 12);

  std::vector<const PhonemeString*> ptrs;
  for (const PhonemeString& s : pool) ptrs.push_back(&s);
  ptrs.push_back(nullptr);  // null candidates never match

  DpArena arena;
  std::vector<size_t> matched;
  matcher.kernel().MatchBatch(probe, ptrs,
                              matcher.options().threshold, &arena,
                              &matched);
  EXPECT_TRUE(std::is_sorted(matched.begin(), matched.end()));
  std::vector<size_t> expected;
  for (size_t i = 0; i < pool.size(); ++i) {
    if (matcher.MatchPhonemes(probe, pool[i])) expected.push_back(i);
  }
  EXPECT_EQ(matched, expected);
}

TEST(MatchKernelTest, CompileCachesPerParams) {
  const phonetic::ClusterTable& clusters =
      phonetic::ClusterTable::Default();
  const ClusteredCost a(clusters, 0.25, true);
  const ClusteredCost b(clusters, 0.25, true);
  const ClusteredCost c(clusters, 0.5, true);
  EXPECT_EQ(CompiledCostModel::Compile(a), CompiledCostModel::Compile(b));
  EXPECT_NE(CompiledCostModel::Compile(a), CompiledCostModel::Compile(c));
  const LevenshteinCost lev;
  EXPECT_EQ(CompiledCostModel::Compile(lev),
            CompiledCostModel::Compile(lev));
  EXPECT_TRUE(CompiledCostModel::Compile(lev)->IsUnit());
  EXPECT_FALSE(CompiledCostModel::Compile(a)->IsUnit());
}

TEST(MatchKernelTest, CountersClassifyPathsCorrectly) {
  Random rng(0x5eed0006);
  DpArena arena;

  // Unit model, both sides <= 64: bit-parallel.
  const LevenshteinCost lev;
  const MatchKernel unit(CompiledCostModel::Compile(lev));
  const PhonemeString s8 = RandomString(&rng, 8);
  const PhonemeString s9 = RandomString(&rng, 9);
  unit.Distance(s8, s9, &arena);
  EXPECT_EQ(arena.counters.bitparallel_pairs, 1u);
  EXPECT_EQ(arena.counters.dp_cells, 0u);  // no DP cells on this path

  // Unit model past 64 phonemes falls back to the weighted DP.
  const PhonemeString s70 = RandomString(&rng, 70);
  const PhonemeString s71 = RandomString(&rng, 71);
  unit.Distance(s70, s71, &arena);
  EXPECT_EQ(arena.counters.bitparallel_pairs, 1u);
  EXPECT_EQ(arena.counters.banded_pairs + arena.counters.general_pairs,
            1u);
  EXPECT_GT(arena.counters.dp_cells, 0u);

  // Weighted model with a finite bound narrower than the grid: banded.
  const ClusteredCost clu(phonetic::ClusterTable::Default(), 0.25, true);
  const MatchKernel weighted(CompiledCostModel::Compile(clu));
  const PhonemeString t30 = RandomString(&rng, 30);
  const PhonemeString u30 = RandomString(&rng, 30);
  const KernelCounters before = arena.counters;
  weighted.BoundedDistance(t30, u30, 1.0, &arena);
  EXPECT_EQ(arena.counters.DeltaSince(before).banded_pairs, 1u);

  // Weighted model, unbounded: general full DP.
  const KernelCounters before2 = arena.counters;
  weighted.Distance(t30, u30, &arena);
  EXPECT_EQ(arena.counters.DeltaSince(before2).general_pairs, 1u);
}

// ---------------------------------------------------------------------
// SIMD lane path: backend parity, fixed-point exactness, dispatch.

// Every backend whose kernel is runnable on this host. Scalar
// emulation is always present; AVX2/NEON join on hosts reporting the
// ISA, so the same test binary proves cross-backend bit-equality
// wherever it runs.
std::vector<SimdBackend> ForcedBackends() {
  std::vector<SimdBackend> backends{SimdBackend::kScalar};
  for (const SimdBackend b : {SimdBackend::kAvx2, SimdBackend::kNeon}) {
    if (SimdBackendAvailable(b)) backends.push_back(b);
  }
  return backends;
}

TEST(MatchKernelSimdTest, QuantizationAcceptsExactlyTheGridModels) {
  const phonetic::ClusterTable& clusters =
      phonetic::ClusterTable::Default();
  // Every bundled clustered configuration sits on the 1/128 grid.
  for (const double alpha : {0.0, 0.25, 0.5, 1.0}) {
    const ClusteredCost m(clusters, alpha, true);
    EXPECT_TRUE(CompiledCostModel::Compile(m)->quantized()->valid)
        << "alpha=" << alpha;
  }
  const LevenshteinCost lev;
  EXPECT_TRUE(CompiledCostModel::Compile(lev)->quantized()->valid);
  // Off-grid tables must be rejected, not rounded: the feature
  // weights (0.35/0.30/...) and a non-dyadic intra-cluster cost have
  // no exact 1/128 representation.
  const FeatureCost feat(true);
  EXPECT_FALSE(CompiledCostModel::Compile(feat)->quantized()->valid);
  const ClusteredCost odd(clusters, 0.3, true);
  EXPECT_FALSE(CompiledCostModel::Compile(odd)->quantized()->valid);
}

TEST(MatchKernelSimdTest, AllBackendsDecideBatchesBitIdentically) {
  Random rng(0x5eed0007);
  const phonetic::ClusterTable& clusters =
      phonetic::ClusterTable::Default();
  std::vector<NamedModel> models;
  for (const double alpha : {0.0, 0.25, 0.5, 1.0}) {
    models.push_back({"clustered_" + std::to_string(alpha),
                      std::make_unique<ClusteredCost>(clusters, alpha, true)});
  }
  // Off-grid models exercise the in-batch fallback: the lane path
  // must decline them and the decisions still agree.
  models.push_back({"clustered_offgrid",
                    std::make_unique<ClusteredCost>(clusters, 0.3, true)});
  models.push_back({"feature", std::make_unique<FeatureCost>(true)});

  const std::vector<SimdBackend> backends = ForcedBackends();
  ASSERT_GE(backends.size(), 1u);
  // 0.25 is the paper's operating point; 23/128 lands bounds exactly
  // on grid points for many lengths (threshold-boundary rounding);
  // 0.3 is deliberately off-grid (the bound floor must still agree).
  const double thresholds[] = {0.25, 23.0 / 128.0, 0.3};

  uint64_t lane_pairs = 0;
  for (const NamedModel& nm : models) {
    auto compiled = CompiledCostModel::Compile(*nm.model);
    for (int trial = 0; trial < 6; ++trial) {
      const PhonemeString probe =
          RandomString(&rng, 1 + RandomLength(&rng));
      std::vector<PhonemeString> pool;
      for (int i = 0; i < 60; ++i) {
        pool.push_back(RandomString(&rng, RandomLength(&rng)));
      }
      // A few copies of the probe so matches actually occur.
      for (int i = 0; i < 6; ++i) {
        pool.push_back(probe);
      }
      std::vector<const PhonemeString*> ptrs;
      for (const PhonemeString& s : pool) ptrs.push_back(&s);
      ptrs.push_back(nullptr);

      for (const double threshold : thresholds) {
        MatchKernelOptions off;
        off.simd_backend = SimdBackend::kDisabled;
        const MatchKernel scalar_kernel(compiled, off);
        DpArena scalar_arena;
        std::vector<size_t> want;
        scalar_kernel.MatchBatch(probe, ptrs, threshold, &scalar_arena,
                                 &want);

        for (const SimdBackend be : backends) {
          MatchKernelOptions opts;
          opts.simd_backend = be;
          opts.simd_min_batch = 1;
          const MatchKernel lane_kernel(compiled, opts);
          DpArena arena;
          std::vector<size_t> got;
          lane_kernel.MatchBatch(probe, ptrs, threshold, &arena, &got);
          EXPECT_EQ(got, want)
              << nm.name << " backend=" << SimdBackendName(be)
              << " threshold=" << threshold << " trial=" << trial;
          lane_pairs += arena.counters.simd_pairs;
        }
      }
    }
  }
  // The sweep must actually have run the lane path (grid models).
  EXPECT_GT(lane_pairs, 0u);
}

TEST(MatchKernelSimdTest, LaneDistancesAreExactFixedPoint) {
  // With a bound wide enough that no lane saturates or retires, every
  // lane's dist_q / 128 must equal the reference DP bit-for-bit — on
  // every backend, including pad-lane-heavy partial groups.
  Random rng(0x5eed0008);
  const ClusteredCost model(phonetic::ClusterTable::Default(), 0.25, true);
  auto compiled = CompiledCostModel::Compile(model);
  const QuantizedCostModel* q = compiled->quantized();
  ASSERT_TRUE(q->valid);

  for (const SimdBackend be : ForcedBackends()) {
    const LaneKernelFn fn = GetLaneKernel(be);
    ASSERT_NE(fn, nullptr) << SimdBackendName(be);
    const uint32_t width = SimdLaneWidth(be);
    DpArena arena;
    LaneScratch& ls = arena.Lanes();
    for (int trial = 0; trial < 40; ++trial) {
      const PhonemeString probe = RandomString(&rng, 1 + rng.Uniform(40));
      const uint32_t lanes =
          1 + static_cast<uint32_t>(rng.Uniform(width));  // partial groups too
      std::vector<PhonemeString> cands;
      cands.reserve(lanes);
      for (uint32_t l = 0; l < lanes; ++l) {
        cands.push_back(RandomString(&rng, rng.Uniform(48)));
      }
      ls.pending = lanes;
      for (uint32_t l = 0; l < lanes; ++l) {
        ls.cand[l] = &cands[l];
        ls.index[l] = l;
        ls.bounds[l] = 0xFFFE;  // max representable: no early exit
      }
      KernelCounters counters;
      MatchLanes(fn, width, *q, probe.ids(), probe.size(), &ls, &counters);
      for (uint32_t l = 0; l < lanes; ++l) {
        const double ref = EditDistance(probe, cands[l], model);
        EXPECT_EQ(static_cast<double>(ls.dist[l]) / 128.0, ref)
            << SimdBackendName(be) << " trial=" << trial << " lane=" << l;
      }
      ls.pending = 0;
    }
  }
}

TEST(MatchKernelSimdTest, ThresholdBoundaryIsExactToOneGridStep) {
  // The sharpest rounding edge: a bound exactly equal to the true
  // distance must match, and a bound one 1/128 step below must not —
  // on every backend.
  Random rng(0x5eed0009);
  const ClusteredCost model(phonetic::ClusterTable::Default(), 0.25, true);
  auto compiled = CompiledCostModel::Compile(model);
  const QuantizedCostModel* q = compiled->quantized();
  ASSERT_TRUE(q->valid);

  for (const SimdBackend be : ForcedBackends()) {
    const LaneKernelFn fn = GetLaneKernel(be);
    const uint32_t width = SimdLaneWidth(be);
    DpArena arena;
    LaneScratch& ls = arena.Lanes();
    int checked = 0;
    for (int trial = 0; trial < 60; ++trial) {
      const PhonemeString probe = RandomString(&rng, 4 + rng.Uniform(16));
      const PhonemeString cand = RandomString(&rng, 4 + rng.Uniform(16));
      const double ref = EditDistance(probe, cand, model);
      const int64_t ref_q =
          static_cast<int64_t>(ref * QuantizedCostModel::kScale);
      ASSERT_EQ(static_cast<double>(ref_q) / 128.0, ref);  // on-grid
      if (ref_q <= 0 || ref_q >= 0xFFFE) continue;

      auto decide = [&](uint16_t bound_q) {
        ls.pending = 1;
        ls.cand[0] = &cand;
        ls.index[0] = 0;
        ls.bounds[0] = bound_q;
        KernelCounters counters;
        MatchLanes(fn, width, *q, probe.ids(), probe.size(), &ls,
                   &counters);
        ls.pending = 0;
        return ls.dist[0] <= bound_q;
      };
      EXPECT_TRUE(decide(static_cast<uint16_t>(ref_q)))
          << SimdBackendName(be) << " trial=" << trial;
      EXPECT_FALSE(decide(static_cast<uint16_t>(ref_q - 1)))
          << SimdBackendName(be) << " trial=" << trial;
      ++checked;
    }
    ASSERT_GT(checked, 20) << SimdBackendName(be);
  }
}

TEST(MatchKernelSimdTest, DispatchCountersAndNames) {
  EXPECT_STREQ(KernelPathName(KernelPath::kSimdLanes), "simd");
  EXPECT_STREQ(SimdBackendName(SimdBackend::kScalar), "scalar");
  EXPECT_TRUE(SimdBackendAvailable(SimdBackend::kScalar));
  EXPECT_EQ(ResolveSimdBackend(SimdBackend::kDisabled),
            SimdBackend::kDisabled);
  EXPECT_NE(ResolveSimdBackend(SimdBackend::kAuto), SimdBackend::kAuto);

  Random rng(0x5eed000a);
  const ClusteredCost clu(phonetic::ClusterTable::Default(), 0.25, true);
  auto compiled = CompiledCostModel::Compile(clu);
  const PhonemeString probe = RandomString(&rng, 12);
  std::vector<PhonemeString> pool;
  for (int i = 0; i < 40; ++i) {
    pool.push_back(RandomString(&rng, 8 + rng.Uniform(10)));
  }
  std::vector<const PhonemeString*> ptrs;
  for (const PhonemeString& s : pool) ptrs.push_back(&s);

  // Lane path on: pairs land on the simd counters and MatchStats.
  MatchKernelOptions lane_opts;
  lane_opts.simd_backend = SimdBackend::kScalar;
  lane_opts.simd_min_batch = 8;
  const MatchKernel lane_kernel(compiled, lane_opts);
  DpArena arena;
  std::vector<size_t> matched;
  lane_kernel.MatchBatch(probe, ptrs, 0.25, &arena, &matched);
  EXPECT_EQ(arena.counters.simd_pairs, pool.size());
  EXPECT_GT(arena.counters.simd_groups, 0u);
  EXPECT_GT(arena.counters.simd_cells, 0u);
  MatchStats stats;
  arena.counters.AccumulateInto(&stats);
  EXPECT_EQ(stats.kernel_simd, pool.size());
  EXPECT_STREQ(stats.DominantKernel(), "simd");

  // Lane path off: the same batch stays on the banded counters.
  MatchKernelOptions off;
  off.simd_backend = SimdBackend::kDisabled;
  const MatchKernel scalar_kernel(compiled, off);
  DpArena scalar_arena;
  std::vector<size_t> matched2;
  scalar_kernel.MatchBatch(probe, ptrs, 0.25, &scalar_arena, &matched2);
  EXPECT_EQ(scalar_arena.counters.simd_pairs, 0u);
  EXPECT_EQ(matched2, matched);

  // Below simd_min_batch the lane path must not engage.
  MatchKernelOptions min_opts = lane_opts;
  min_opts.simd_min_batch = 64;
  const MatchKernel small_kernel(compiled, min_opts);
  DpArena small_arena;
  std::vector<size_t> matched3;
  small_kernel.MatchBatch(probe, ptrs, 0.25, &small_arena, &matched3);
  EXPECT_EQ(small_arena.counters.simd_pairs, 0u);
  EXPECT_EQ(matched3, matched);
}

}  // namespace
}  // namespace lexequal::match
