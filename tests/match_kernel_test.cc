// Differential tests for the table-driven MatchKernel
// (match/match_kernel.h) against the reference DP
// (match/edit_distance.h): randomized pairs across every bundled cost
// model and a grid of bounds must agree bit-for-bit, for all three
// kernel paths (bit-parallel, banded, general). Plus the tight-prune
// regression (same decisions, strictly fewer cells) and the batch
// API contract.

#include "match/match_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "match/edit_distance.h"
#include "match/lexequal.h"
#include "phonetic/cluster.h"
#include "phonetic/phoneme_string.h"

namespace lexequal::match {
namespace {

using phonetic::Phoneme;
using phonetic::PhonemeString;

// Random phoneme string over the full dense enum. Length-biased
// toward short names, with a tail past 64 so the unit-cost model
// also exercises the non-bit-parallel fallback.
PhonemeString RandomString(Random* rng, size_t len) {
  PhonemeString s;
  for (size_t i = 0; i < len; ++i) {
    s.Append(static_cast<Phoneme>(
        rng->Uniform(static_cast<uint64_t>(phonetic::kPhonemeCount))));
  }
  return s;
}

size_t RandomLength(Random* rng) {
  const uint64_t bucket = rng->Uniform(100);
  if (bucket < 70) return rng->Uniform(28);        // short names
  if (bucket < 95) return 28 + rng->Uniform(36);   // long names
  return 65 + rng->Uniform(32);                    // past the 64 block
}

struct NamedModel {
  std::string name;
  std::unique_ptr<CostModel> model;
};

// Every bundled cost model, covering the unit (bit-parallel),
// clustered (banded), and feature (general weighted) table shapes.
std::vector<NamedModel> AllModels() {
  const phonetic::ClusterTable& clusters =
      phonetic::ClusterTable::Default();
  std::vector<NamedModel> models;
  models.push_back({"levenshtein", std::make_unique<LevenshteinCost>()});
  for (const double alpha : {0.0, 0.25, 0.5, 1.0}) {
    models.push_back(
        {"clustered_" + std::to_string(alpha) + "_weak",
         std::make_unique<ClusteredCost>(clusters, alpha, true)});
  }
  // intra=1, no weak discount: exactly unit tables -> bit-parallel.
  models.push_back({"clustered_unit",
                    std::make_unique<ClusteredCost>(clusters, 1.0, false)});
  models.push_back({"feature", std::make_unique<FeatureCost>(true)});
  models.push_back({"feature_noweak",
                    std::make_unique<FeatureCost>(false)});
  return models;
}

// One differential check: kernel vs reference, unbounded and across
// a grid of bounds. Returns the reference distance.
double CheckPair(const MatchKernel& kernel, const CostModel& model,
                 const PhonemeString& a, const PhonemeString& b,
                 DpArena* arena, const std::string& context) {
  const double ref = EditDistance(a, b, model);
  // Unbounded: bit-identical.
  EXPECT_EQ(kernel.Distance(a, b, arena), ref) << context;

  const double minlen =
      static_cast<double>(std::min(a.size(), b.size()));
  const double bounds[] = {0.0,          0.25 * minlen, 1.0 * minlen,
                           ref,          ref - 0.1,     ref + 0.1};
  for (const double bound : bounds) {
    if (bound < 0.0) continue;
    const double got = kernel.BoundedDistance(a, b, bound, arena);
    if (ref <= bound) {
      // In-bound distances come back exact.
      EXPECT_EQ(got, ref) << context << " bound=" << bound;
    } else {
      EXPECT_GT(got, bound) << context << " bound=" << bound
                            << " ref=" << ref;
    }
  }
  return ref;
}

TEST(MatchKernelDifferentialTest, RandomPairsMatchReferenceExactly) {
  Random rng(0x5eed0001);
  const std::vector<NamedModel> models = AllModels();
  DpArena arena;
  // ~10k random pairs, each checked under every model and the bound
  // grid above — all three kernel paths run many thousands of times.
  constexpr int kPairsPerModel = 1200;
  for (const NamedModel& nm : models) {
    const MatchKernel kernel(CompiledCostModel::Compile(*nm.model));
    for (int i = 0; i < kPairsPerModel; ++i) {
      const PhonemeString a = RandomString(&rng, RandomLength(&rng));
      const PhonemeString b = RandomString(&rng, RandomLength(&rng));
      CheckPair(kernel, *nm.model, a, b, &arena,
                nm.name + " pair#" + std::to_string(i));
    }
  }
  // Sanity: the sweep exercised every kernel path.
  EXPECT_GT(arena.counters.bitparallel_pairs, 0u);
  EXPECT_GT(arena.counters.banded_pairs, 0u);
  EXPECT_GT(arena.counters.general_pairs, 0u);
}

TEST(MatchKernelDifferentialTest, EmptyAndDegenerateCases) {
  const std::vector<NamedModel> models = AllModels();
  Random rng(0x5eed0002);
  DpArena arena;
  const PhonemeString empty;
  const PhonemeString one = RandomString(&rng, 1);
  const PhonemeString mid = RandomString(&rng, 17);
  const PhonemeString big = RandomString(&rng, 70);
  for (const NamedModel& nm : models) {
    const MatchKernel kernel(CompiledCostModel::Compile(*nm.model));
    for (const PhonemeString* x : {&empty, &one, &mid, &big}) {
      for (const PhonemeString* y : {&empty, &one, &mid, &big}) {
        CheckPair(kernel, *nm.model, *x, *y, &arena, nm.name);
      }
    }
    // Identical strings are distance 0 under every bundled model.
    EXPECT_EQ(kernel.Distance(mid, mid, &arena), 0.0) << nm.name;
    EXPECT_EQ(kernel.BoundedDistance(mid, mid, 0.0, &arena), 0.0)
        << nm.name;
  }
}

TEST(MatchKernelDifferentialTest, BandEdgeLengthGaps) {
  // Pairs whose length gap sits exactly at / just past what the bound
  // affords: the banded path must clip rows to an empty feasible
  // window without reading outside it.
  const std::vector<NamedModel> models = AllModels();
  Random rng(0x5eed0003);
  DpArena arena;
  for (const NamedModel& nm : models) {
    const MatchKernel kernel(CompiledCostModel::Compile(*nm.model));
    for (const auto& [la, lb] : std::vector<std::pair<size_t, size_t>>{
             {1, 40}, {40, 1}, {10, 40}, {63, 65}, {64, 64}, {65, 66},
             {5, 6},  {32, 48}}) {
      const PhonemeString a = RandomString(&rng, la);
      const PhonemeString b = RandomString(&rng, lb);
      CheckPair(kernel, *nm.model, a, b, &arena,
                nm.name + " la=" + std::to_string(la) +
                    " lb=" + std::to_string(lb));
    }
  }
}

TEST(MatchKernelTest, TightPruneDecidesIdenticallyWithFewerCells) {
  // Satellite regression for the pessimistic prune: the legacy bound
  // priced the remaining length gap at the *global* MinEditCost (0.5
  // with the weak-phoneme discount) even when no remaining phoneme is
  // that cheap. The tight per-phoneme suffix bound must never change
  // a decision and must visit strictly fewer cells on strings with no
  // weak phonemes.
  const phonetic::ClusterTable& clusters =
      phonetic::ClusterTable::Default();
  const ClusteredCost model(clusters, 0.25, true);
  auto compiled = CompiledCostModel::Compile(model);
  const MatchKernel tight(compiled, MatchKernelOptions{true});
  const MatchKernel legacy(compiled, MatchKernelOptions{false});
  ASSERT_LT(compiled->min_indel(), 1.0);  // discount present in tables

  // Strings over non-weak phonemes only: every real ins/del costs 1,
  // twice what the legacy bound assumes.
  Random rng(0x5eed0004);
  DpArena tight_arena;
  DpArena legacy_arena;
  int decisions = 0;
  for (int i = 0; i < 400; ++i) {
    PhonemeString a;
    PhonemeString b;
    for (size_t k = RandomLength(&rng); k > 0; --k) {
      a.Append(static_cast<Phoneme>(rng.Uniform(20)));  // low ids: vowels/stops
    }
    for (size_t k = RandomLength(&rng); k > 0; --k) {
      b.Append(static_cast<Phoneme>(rng.Uniform(20)));
    }
    if (a.empty() || b.empty()) continue;
    const double bound =
        0.25 * static_cast<double>(std::min(a.size(), b.size()));
    const double dt = tight.BoundedDistance(a, b, bound, &tight_arena);
    const double dl = legacy.BoundedDistance(a, b, bound, &legacy_arena);
    EXPECT_EQ(dt <= bound, dl <= bound) << "pair#" << i;
    if (dt <= bound) {
      EXPECT_EQ(dt, dl) << "pair#" << i;
    }
    ++decisions;
  }
  ASSERT_GT(decisions, 300);
  EXPECT_LT(tight_arena.counters.dp_cells,
            legacy_arena.counters.dp_cells);
}

TEST(MatchKernelTest, MatchBatchAgreesWithScalarAndIsAscending) {
  LexEqualMatcher matcher;  // default threshold 0.25, clustered costs
  Random rng(0x5eed0005);
  std::vector<PhonemeString> pool;
  for (int i = 0; i < 300; ++i) {
    pool.push_back(RandomString(&rng, RandomLength(&rng)));
  }
  const PhonemeString probe = RandomString(&rng, 12);

  std::vector<const PhonemeString*> ptrs;
  for (const PhonemeString& s : pool) ptrs.push_back(&s);
  ptrs.push_back(nullptr);  // null candidates never match

  DpArena arena;
  std::vector<size_t> matched;
  matcher.kernel().MatchBatch(probe, ptrs,
                              matcher.options().threshold, &arena,
                              &matched);
  EXPECT_TRUE(std::is_sorted(matched.begin(), matched.end()));
  std::vector<size_t> expected;
  for (size_t i = 0; i < pool.size(); ++i) {
    if (matcher.MatchPhonemes(probe, pool[i])) expected.push_back(i);
  }
  EXPECT_EQ(matched, expected);
}

TEST(MatchKernelTest, CompileCachesPerParams) {
  const phonetic::ClusterTable& clusters =
      phonetic::ClusterTable::Default();
  const ClusteredCost a(clusters, 0.25, true);
  const ClusteredCost b(clusters, 0.25, true);
  const ClusteredCost c(clusters, 0.5, true);
  EXPECT_EQ(CompiledCostModel::Compile(a), CompiledCostModel::Compile(b));
  EXPECT_NE(CompiledCostModel::Compile(a), CompiledCostModel::Compile(c));
  const LevenshteinCost lev;
  EXPECT_EQ(CompiledCostModel::Compile(lev),
            CompiledCostModel::Compile(lev));
  EXPECT_TRUE(CompiledCostModel::Compile(lev)->IsUnit());
  EXPECT_FALSE(CompiledCostModel::Compile(a)->IsUnit());
}

TEST(MatchKernelTest, CountersClassifyPathsCorrectly) {
  Random rng(0x5eed0006);
  DpArena arena;

  // Unit model, both sides <= 64: bit-parallel.
  const LevenshteinCost lev;
  const MatchKernel unit(CompiledCostModel::Compile(lev));
  const PhonemeString s8 = RandomString(&rng, 8);
  const PhonemeString s9 = RandomString(&rng, 9);
  unit.Distance(s8, s9, &arena);
  EXPECT_EQ(arena.counters.bitparallel_pairs, 1u);
  EXPECT_EQ(arena.counters.dp_cells, 0u);  // no DP cells on this path

  // Unit model past 64 phonemes falls back to the weighted DP.
  const PhonemeString s70 = RandomString(&rng, 70);
  const PhonemeString s71 = RandomString(&rng, 71);
  unit.Distance(s70, s71, &arena);
  EXPECT_EQ(arena.counters.bitparallel_pairs, 1u);
  EXPECT_EQ(arena.counters.banded_pairs + arena.counters.general_pairs,
            1u);
  EXPECT_GT(arena.counters.dp_cells, 0u);

  // Weighted model with a finite bound narrower than the grid: banded.
  const ClusteredCost clu(phonetic::ClusterTable::Default(), 0.25, true);
  const MatchKernel weighted(CompiledCostModel::Compile(clu));
  const PhonemeString t30 = RandomString(&rng, 30);
  const PhonemeString u30 = RandomString(&rng, 30);
  const KernelCounters before = arena.counters;
  weighted.BoundedDistance(t30, u30, 1.0, &arena);
  EXPECT_EQ(arena.counters.DeltaSince(before).banded_pairs, 1u);

  // Weighted model, unbounded: general full DP.
  const KernelCounters before2 = arena.counters;
  weighted.Distance(t30, u30, &arena);
  EXPECT_EQ(arena.counters.DeltaSince(before2).general_pairs, 1u);
}

}  // namespace
}  // namespace lexequal::match
