#include "match/edit_distance.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "match/cost_model.h"

namespace lexequal::match {
namespace {

using phonetic::ClusterTable;
using phonetic::kPhonemeCount;
using phonetic::Phoneme;
using phonetic::PhonemeString;
using P = Phoneme;

PhonemeString RandomString(Random* rng, size_t max_len) {
  size_t len = rng->Uniform(max_len + 1);
  std::vector<Phoneme> ph;
  ph.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    ph.push_back(static_cast<Phoneme>(rng->Uniform(kPhonemeCount)));
  }
  return PhonemeString(std::move(ph));
}

TEST(EditDistanceTest, IdenticalStringsAreZero) {
  LevenshteinCost cost;
  PhonemeString s({P::kN, P::kE, P::kR, P::kU});
  EXPECT_EQ(EditDistance(s, s, cost), 0.0);
}

TEST(EditDistanceTest, EmptyVersusNonEmpty) {
  LevenshteinCost cost;
  PhonemeString empty;
  PhonemeString s({P::kN, P::kE, P::kR});
  EXPECT_EQ(EditDistance(empty, s, cost), 3.0);
  EXPECT_EQ(EditDistance(s, empty, cost), 3.0);
  EXPECT_EQ(EditDistance(empty, empty, cost), 0.0);
}

TEST(EditDistanceTest, SingleEdits) {
  LevenshteinCost cost;
  PhonemeString neru({P::kN, P::kE, P::kR, P::kU});
  PhonemeString nehru({P::kN, P::kE, P::kH, P::kR, P::kU});
  PhonemeString nelu({P::kN, P::kE, P::kL, P::kU});
  EXPECT_EQ(EditDistance(neru, nehru, cost), 1.0);  // insertion
  EXPECT_EQ(EditDistance(neru, nelu, cost), 1.0);   // substitution
}

TEST(EditDistanceTest, ClusteredCostChargesIntraClusterFraction) {
  ClusteredCost half(ClusterTable::Default(), 0.5);
  // ɛ and e share the front-vowel cluster.
  PhonemeString a({P::kN, P::kEh, P::kR, P::kU});
  PhonemeString b({P::kN, P::kE, P::kR, P::kU});
  EXPECT_DOUBLE_EQ(EditDistance(a, b, half), 0.5);
  // Cost 1 degenerates to Levenshtein.
  ClusteredCost unit(ClusterTable::Default(), 1.0);
  EXPECT_DOUBLE_EQ(EditDistance(a, b, unit), 1.0);
  // Cost 0 simulates Soundex: like phonemes are free.
  ClusteredCost zero(ClusterTable::Default(), 0.0);
  EXPECT_DOUBLE_EQ(EditDistance(a, b, zero), 0.0);
}

TEST(EditDistanceTest, ClusteredCostCrossClusterIsUnit) {
  ClusteredCost half(ClusterTable::Default(), 0.5);
  PhonemeString a({P::kN, P::kE, P::kR, P::kU});
  PhonemeString b({P::kN, P::kE, P::kL, P::kU});  // r vs l: different
  EXPECT_DOUBLE_EQ(EditDistance(a, b, half), 1.0);
}

TEST(EditDistanceTest, SymmetryProperty) {
  Random rng(2024);
  LevenshteinCost cost;
  for (int trial = 0; trial < 200; ++trial) {
    PhonemeString a = RandomString(&rng, 12);
    PhonemeString b = RandomString(&rng, 12);
    EXPECT_DOUBLE_EQ(EditDistance(a, b, cost), EditDistance(b, a, cost));
  }
}

TEST(EditDistanceTest, TriangleInequalityProperty) {
  Random rng(7);
  ClusteredCost cost(ClusterTable::Default(), 0.5);
  for (int trial = 0; trial < 100; ++trial) {
    PhonemeString a = RandomString(&rng, 10);
    PhonemeString b = RandomString(&rng, 10);
    PhonemeString c = RandomString(&rng, 10);
    const double ab = EditDistance(a, b, cost);
    const double bc = EditDistance(b, c, cost);
    const double ac = EditDistance(a, c, cost);
    EXPECT_LE(ac, ab + bc + 1e-9);
  }
}

TEST(EditDistanceTest, BoundedAgreesWithFullWhenWithinBound) {
  Random rng(11);
  ClusteredCost cost(ClusterTable::Default(), 0.5);
  int checked = 0;
  for (int trial = 0; trial < 500; ++trial) {
    PhonemeString a = RandomString(&rng, 10);
    PhonemeString b = RandomString(&rng, 10);
    const double full = EditDistance(a, b, cost);
    const double bound = 3.0;
    const double bounded = BoundedEditDistance(a, b, cost, bound);
    if (full <= bound) {
      EXPECT_DOUBLE_EQ(bounded, full) << a.ToIpa() << " vs " << b.ToIpa();
      ++checked;
    } else {
      EXPECT_GT(bounded, bound);
    }
  }
  EXPECT_GT(checked, 20);  // the sweep must exercise the agree branch
}

TEST(EditDistanceTest, BoundedIsConsistentAcrossBounds) {
  // Raising the bound never changes a within-bound answer.
  Random rng(13);
  LevenshteinCost cost;
  for (int trial = 0; trial < 200; ++trial) {
    PhonemeString a = RandomString(&rng, 8);
    PhonemeString b = RandomString(&rng, 8);
    const double d2 = BoundedEditDistance(a, b, cost, 2.0);
    const double d5 = BoundedEditDistance(a, b, cost, 5.0);
    if (d2 <= 2.0) EXPECT_DOUBLE_EQ(d2, d5);
  }
}

TEST(EditDistanceTest, BoundedLengthGapShortCircuits) {
  LevenshteinCost cost;
  PhonemeString shorty({P::kN});
  PhonemeString longy(std::vector<Phoneme>(10, P::kN));
  EXPECT_GT(BoundedEditDistance(shorty, longy, cost, 2.0), 2.0);
}

TEST(EditDistanceTest, ZeroBoundMeansExactMatchOnly) {
  LevenshteinCost cost;
  PhonemeString a({P::kN, P::kE});
  PhonemeString b({P::kN, P::kE});
  PhonemeString c({P::kN, P::kA});
  EXPECT_EQ(BoundedEditDistance(a, b, cost, 0.0), 0.0);
  EXPECT_GT(BoundedEditDistance(a, c, cost, 0.0), 0.0);
}

}  // namespace
}  // namespace lexequal::match
