// Statement-statistics, slow-query-log, and engine-health coverage.
//
// Three layers, matching the observability planes:
//  * obs unit tests — StatementStats slot lifecycle (claim, drop,
//    reset, text truncation) and SlowQueryLog ring retention,
//    including a threaded retention stress that runs under tsan via
//    the `parallel` ctest label.
//  * sql unit tests — fingerprint normalization: literals erased,
//    identifiers case-folded, plan/threshold knobs preserved.
//  * engine integration — the differential test: a randomized mixed
//    workload over two concurrent sessions, with per-query ground
//    truth summed from QueryResult stats and compared EXACTLY
//    against the registry aggregates; plus SHOW STATEMENTS, slow
//    query capture, and Engine::Health().

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <iterator>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "engine/session.h"
#include "obs/slow_query_log.h"
#include "obs/stmt_stats.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "text/utf8.h"

namespace lexequal {
namespace {

using engine::Engine;
using engine::LexEqualPlan;
using engine::QueryRequest;
using engine::Schema;
using engine::Session;
using engine::Tuple;
using engine::Value;
using engine::ValueType;
using text::Language;

// --- StatementStats unit tests ---

TEST(FingerprintHashTest, StableNonZeroAndDiscriminating) {
  EXPECT_EQ(obs::FingerprintHash("select ?"),
            obs::FingerprintHash("select ?"));
  EXPECT_NE(obs::FingerprintHash("select ?"),
            obs::FingerprintHash("select ??"));
  EXPECT_NE(obs::FingerprintHash(""), 0u);
  EXPECT_NE(obs::FingerprintHash("x"), 0u);
}

TEST(StatementStatsTest, AggregatesPerFingerprint) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "histogram recording compiled out";
#endif
  const bool was = obs::SetEnabled(true);
  obs::StatementStats stats(2, 8);

  obs::StmtRecord a;
  a.fingerprint = 11;
  a.statement = "select a";
  a.wall_us = 100;
  a.rows = 3;
  a.candidates = 7;
  a.dp_cells = 40;
  a.plan = 1;
  stats.Record(a);
  a.wall_us = 50;
  a.rows = 2;
  a.plan = 2;
  stats.Record(a);
  obs::StmtRecord b;
  b.fingerprint = 22;
  b.statement = "select b";
  b.wall_us = 9;
  b.error = true;
  stats.Record(b);

  EXPECT_EQ(stats.recorded(), 3u);
  EXPECT_EQ(stats.fingerprints(), 2u);
  std::vector<obs::StatementStats::Aggregate> snap = stats.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  const auto& agg_a = snap[0].fingerprint == 11 ? snap[0] : snap[1];
  const auto& agg_b = snap[0].fingerprint == 11 ? snap[1] : snap[0];
  EXPECT_EQ(agg_a.calls, 2u);
  EXPECT_EQ(agg_a.errors, 0u);
  EXPECT_EQ(agg_a.rows, 5u);
  EXPECT_EQ(agg_a.candidates, 14u);
  EXPECT_EQ(agg_a.dp_cells, 80u);
  EXPECT_EQ(agg_a.total_us, 150u);
  EXPECT_EQ(agg_a.plan_calls[1], 1u);
  EXPECT_EQ(agg_a.plan_calls[2], 1u);
  EXPECT_EQ(agg_a.statement, "select a");
  EXPECT_EQ(agg_a.latency.count, 2u);
  EXPECT_EQ(agg_a.latency.sum, 150u);
  EXPECT_EQ(agg_b.calls, 1u);
  EXPECT_EQ(agg_b.errors, 1u);
  obs::SetEnabled(was);
}

TEST(StatementStatsTest, DerivesFingerprintFromTextWhenZero) {
  obs::StatementStats stats(1, 4);
  obs::StmtRecord r;
  r.statement = "select derived";
  stats.Record(r);
  std::vector<obs::StatementStats::Aggregate> snap = stats.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].fingerprint,
            obs::FingerprintHash("select derived"));
}

TEST(StatementStatsTest, FullShardDropsNewKeepsExisting) {
  obs::StatementStats stats(1, 2);
  for (uint64_t fp : {1u, 2u, 3u}) {  // third claim must not fit
    obs::StmtRecord r;
    r.fingerprint = fp;
    stats.Record(r);
  }
  EXPECT_EQ(stats.fingerprints(), 2u);
  EXPECT_EQ(stats.dropped(), 1u);
  // Established fingerprints keep aggregating after the shard fills.
  obs::StmtRecord again;
  again.fingerprint = 1;
  stats.Record(again);
  EXPECT_EQ(stats.dropped(), 1u);
  std::vector<obs::StatementStats::Aggregate> snap = stats.Snapshot();
  for (const auto& agg : snap) {
    if (agg.fingerprint == 1) {
      EXPECT_EQ(agg.calls, 2u);
    }
  }
}

TEST(StatementStatsTest, ResetFreesSlotsForReuse) {
  obs::StatementStats stats(1, 2);
  obs::StmtRecord r;
  r.fingerprint = 7;
  stats.Record(r);
  stats.Reset();
  EXPECT_EQ(stats.fingerprints(), 0u);
  EXPECT_TRUE(stats.Snapshot().empty());
  r.fingerprint = 8;  // a fresh fingerprint claims a recycled slot
  stats.Record(r);
  std::vector<obs::StatementStats::Aggregate> snap = stats.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].fingerprint, 8u);
  EXPECT_EQ(snap[0].calls, 1u);
}

TEST(StatementStatsTest, StatementTextTruncatedAtCap) {
  obs::StatementStats stats(1, 2);
  const std::string longtext(
      obs::StatementStats::kMaxStatementBytes + 100, 'q');
  obs::StmtRecord r;
  r.fingerprint = 5;
  r.statement = longtext;
  stats.Record(r);
  std::vector<obs::StatementStats::Aggregate> snap = stats.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].statement.size(),
            obs::StatementStats::kMaxStatementBytes);
  EXPECT_EQ(snap[0].statement,
            longtext.substr(0, obs::StatementStats::kMaxStatementBytes));
}

TEST(StatementStatsTest, ExportsCarryFingerprintSeries) {
  obs::StatementStats stats(1, 4);
  obs::StmtRecord r;
  r.fingerprint = 0xabcdef;
  r.statement = "select exported";
  r.wall_us = 3;
  stats.Record(r);
  const std::string json = stats.ExportJson();
  EXPECT_NE(json.find("select exported"), std::string::npos);
  EXPECT_NE(json.find("\"calls\""), std::string::npos);
  const std::string prom = stats.ExportPrometheus();
  EXPECT_NE(prom.find("lexequal_stmt_calls"), std::string::npos);
  EXPECT_NE(prom.find("lexequal_stmt_total_us"), std::string::npos);
}

// --- SlowQueryLog unit tests ---

TEST(SlowQueryLogTest, RetainsNewestFirstAndEvictsOldest) {
  obs::SlowQueryLog log(4);
  for (int i = 0; i < 6; ++i) {
    obs::SlowQueryEntry e;
    e.wall_us = 100 + i;
    e.statement = "q" + std::to_string(i);
    log.Record(std::move(e));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.captured(), 6u);
  std::vector<obs::SlowQueryEntry> latest = log.Latest();
  ASSERT_EQ(latest.size(), 4u);
  EXPECT_EQ(latest[0].seq, 6u);  // newest first
  EXPECT_EQ(latest[3].seq, 3u);  // entries 1 and 2 evicted
  EXPECT_EQ(latest[0].statement, "q5");
  EXPECT_EQ(log.Latest(2).size(), 2u);
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.captured(), 6u);  // lifetime counter survives Clear
}

TEST(SlowQueryLogTest, ExportJsonRendersEntries) {
  obs::SlowQueryLog log(4);
  obs::SlowQueryEntry e;
  e.fingerprint = 42;
  e.wall_us = 1234;
  e.statement = "select slow";
  e.plan = "qgram";
  log.Record(std::move(e));
  const std::string json = log.ExportJson();
  EXPECT_NE(json.find("select slow"), std::string::npos);
  EXPECT_NE(json.find("qgram"), std::string::npos);
  EXPECT_NE(json.find("1234"), std::string::npos);
}

// Retention under racing writers: with T*M captures through a
// capacity-C ring, the survivors must be exactly the C most recent
// seqs, newest first. Runs under tsan via the `parallel` label.
TEST(SlowQueryLogTest, ConcurrentRecordRetainsLastN) {
  constexpr size_t kCapacity = 8;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  obs::SlowQueryLog log(kCapacity);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::SlowQueryEntry e;
        e.session_id = static_cast<uint64_t>(t);
        e.wall_us = static_cast<uint64_t>(i);
        e.statement = "stress";
        log.Record(std::move(e));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(log.captured(), kTotal);
  EXPECT_EQ(log.size(), kCapacity);
  std::vector<obs::SlowQueryEntry> latest = log.Latest();
  ASSERT_EQ(latest.size(), kCapacity);
  for (size_t i = 0; i < latest.size(); ++i) {
    // Exactly the last kCapacity seqs, in strictly descending order.
    EXPECT_EQ(latest[i].seq, kTotal - i);
  }
}

// --- Fingerprint normalization (sql layer) ---

uint64_t FingerprintOf(std::string_view query) {
  Result<sql::Statement> stmt = sql::ParseStatement(query);
  EXPECT_TRUE(stmt.ok()) << query << ": " << stmt.status();
  return stmt.ok() ? sql::FingerprintStatement(*stmt) : 0;
}

TEST(FingerprintTest, LiteralsAndCaseDoNotChangeFingerprint) {
  const uint64_t base = FingerprintOf(
      "select Author from Books where Author LexEQUAL 'Nehru' "
      "Threshold 0.25");
  EXPECT_EQ(base, FingerprintOf("SELECT  author  FROM  books  WHERE  "
                                "author  LEXEQUAL  'Nero'  "
                                "threshold 0.25"));
  EXPECT_NE(base, 0u);
}

TEST(FingerprintTest, KnobsAreFingerprintRelevant) {
  const uint64_t t25 = FingerprintOf(
      "select author from books where author lexequal 'x' "
      "threshold 0.25");
  const uint64_t t50 = FingerprintOf(
      "select author from books where author lexequal 'x' "
      "threshold 0.5");
  const uint64_t t25_qgram = FingerprintOf(
      "select author from books where author lexequal 'x' "
      "threshold 0.25 using qgram");
  EXPECT_NE(t25, t50);          // threshold is a plan-shaping knob
  EXPECT_NE(t25, t25_qgram);    // so is the USING plan hint
  EXPECT_NE(t50, t25_qgram);
}

TEST(FingerprintTest, NormalizedTextErasesLiterals) {
  Result<sql::Statement> stmt = sql::ParseStatement(
      "select Author from Books where Author LexEQUAL 'Nehru' "
      "Threshold 0.25");
  ASSERT_TRUE(stmt.ok());
  const std::string norm = sql::NormalizeStatement(*stmt);
  EXPECT_EQ(norm.find("Nehru"), std::string::npos);
  EXPECT_EQ(norm.find("nehru"), std::string::npos);
  EXPECT_NE(norm.find('?'), std::string::npos);
  EXPECT_NE(norm.find("lexequal"), std::string::npos);
  EXPECT_NE(norm.find("books"), std::string::npos);  // case-folded
}

// --- Engine integration ---

class StmtStatsEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_obs_ = obs::SetEnabled(true);
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_stmt_stats_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
    auto db = Engine::Open(path_.string(), 512);
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(db).value();

    Schema schema({
        {"author", ValueType::kString, std::nullopt},
        {"author_phon", ValueType::kString, 0},
    });
    ASSERT_TRUE(db_->CreateTable("books", schema).ok());
    const std::string nehru_hi =
        text::EncodeUtf8({0x0928, 0x0947, 0x0939, 0x0930, 0x0941});
    for (const auto& [author, lang] :
         std::vector<std::pair<std::string, Language>>{
             {"Nehru", Language::kEnglish},
             {nehru_hi, Language::kHindi},
             {"Neeru", Language::kEnglish},
             {"Nero", Language::kEnglish},
             {"Smith", Language::kEnglish},
             {"Schmidt", Language::kEnglish},
             {"Laxman", Language::kEnglish},
             {"Lakshman", Language::kEnglish},
         }) {
      Tuple values{Value::String(author, lang)};
      ASSERT_TRUE(db_->Insert("books", values).ok());
    }
    ASSERT_TRUE(db_->CreateIndex({.kind = engine::IndexSpec::Kind::kQGram,
                                  .table = "books",
                                  .column = "author_phon",
                                  .q = 2}).ok());
    ASSERT_TRUE(
        db_->CreateIndex({.kind = engine::IndexSpec::Kind::kPhonetic,
                          .table = "books",
                          .column = "author_phon"}).ok());
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove(path_);
    obs::SetEnabled(previous_obs_);
  }

  bool previous_obs_ = true;
  std::filesystem::path path_;
  std::unique_ptr<Engine> db_;
};

// Ground truth accumulated from per-query QueryResult stats — the
// values Session::Execute later feeds into StatementStats must sum
// to exactly these.
struct ExpectedAggregate {
  uint64_t calls = 0;
  uint64_t rows = 0;
  uint64_t candidates = 0;
  uint64_t dp_cells = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t total_us = 0;
  std::array<uint64_t, obs::StatementStats::kMaxPlans> plan_calls{};
};

// The acceptance differential: a randomized mixed workload over two
// concurrent sessions. Every counter the registry aggregates is also
// summed per-fingerprint from the QueryResults the clients saw; the
// two views must agree EXACTLY — lock-free recording may not lose or
// double-count a single row, cell, or microsecond.
TEST_F(StmtStatsEngineTest, DifferentialAggregatesMatchGroundTruth) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "statement recording compiled out";
#endif
  const char* templates[] = {
      "select author from books where author lexequal '%s' "
      "threshold 0.25",
      "select author from books where author lexequal '%s' "
      "threshold 0.25 using qgram",
      "select author from books where author lexequal '%s' "
      "threshold 0.25 using phonetic",
      "select author from books where author lexequal '%s' "
      "threshold 0.5 using naive",
  };
  const char* probes[] = {"Nehru", "Nero", "Smith", "Laxman", "Neeru"};

  std::mutex merge_mu;
  std::map<uint64_t, ExpectedAggregate> expected;
  std::atomic<bool> failed{false};
  auto worker = [&](uint64_t seed) {
    Session session = db_->CreateSession();
    Random rng(seed);
    std::map<uint64_t, ExpectedAggregate> local;
    for (int i = 0; i < 60 && !failed.load(); ++i) {
      const char* tmpl = templates[rng.Uniform(std::size(templates))];
      const char* probe = probes[rng.Uniform(std::size(probes))];
      char query[256];
      std::snprintf(query, sizeof query, tmpl, probe);

      Result<sql::Statement> stmt = sql::ParseStatement(query);
      if (!stmt.ok()) {
        failed.store(true);
        return;
      }
      const uint64_t fp = sql::FingerprintStatement(*stmt);
      Result<sql::QueryResult> result = sql::Execute(&session, *stmt);
      if (!result.ok()) {
        failed.store(true);
        return;
      }
      ExpectedAggregate& agg = local[fp];
      agg.calls += 1;
      agg.rows += result->stats.results;
      agg.candidates += result->stats.candidates;
      agg.dp_cells += result->stats.match.dp_cells;
      agg.cache_hits += result->stats.match.cache_hits;
      agg.cache_misses += result->stats.match.cache_misses;
      agg.total_us += result->stats.wall_us;
      agg.plan_calls[static_cast<size_t>(result->stats.plan)] += 1;
    }
    std::lock_guard<std::mutex> lock(merge_mu);
    for (const auto& [fp, agg] : local) {
      ExpectedAggregate& merged = expected[fp];
      merged.calls += agg.calls;
      merged.rows += agg.rows;
      merged.candidates += agg.candidates;
      merged.dp_cells += agg.dp_cells;
      merged.cache_hits += agg.cache_hits;
      merged.cache_misses += agg.cache_misses;
      merged.total_us += agg.total_us;
      for (size_t p = 0; p < merged.plan_calls.size(); ++p) {
        merged.plan_calls[p] += agg.plan_calls[p];
      }
    }
  };
  std::thread t1(worker, 0xA11CE);
  std::thread t2(worker, 0xB0B);
  t1.join();
  t2.join();
  ASSERT_FALSE(failed.load()) << "workload query failed";

  std::vector<obs::StatementStats::Aggregate> snap =
      db_->stmt_stats()->Snapshot();
  ASSERT_EQ(snap.size(), expected.size());
  for (const obs::StatementStats::Aggregate& agg : snap) {
    auto it = expected.find(agg.fingerprint);
    ASSERT_NE(it, expected.end())
        << "unexpected fingerprint " << agg.fingerprint;
    const ExpectedAggregate& want = it->second;
    EXPECT_EQ(agg.calls, want.calls) << agg.statement;
    EXPECT_EQ(agg.errors, 0u) << agg.statement;
    EXPECT_EQ(agg.rows, want.rows) << agg.statement;
    EXPECT_EQ(agg.candidates, want.candidates) << agg.statement;
    EXPECT_EQ(agg.dp_cells, want.dp_cells) << agg.statement;
    EXPECT_EQ(agg.cache_hits, want.cache_hits) << agg.statement;
    EXPECT_EQ(agg.cache_misses, want.cache_misses) << agg.statement;
    EXPECT_EQ(agg.total_us, want.total_us) << agg.statement;
    for (size_t p = 0; p < want.plan_calls.size(); ++p) {
      EXPECT_EQ(agg.plan_calls[p], want.plan_calls[p])
          << agg.statement << " plan " << p;
    }
    // The latency histogram observed one wall_us sample per call.
    EXPECT_EQ(agg.latency.count, want.calls) << agg.statement;
    EXPECT_EQ(agg.latency.sum, want.total_us) << agg.statement;
  }
  EXPECT_EQ(db_->stmt_stats()->dropped(), 0u);
}

TEST_F(StmtStatsEngineTest, ShowStatementsOrdersLimitsAndResets) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "statement recording compiled out";
#endif
  Session session = db_->CreateSession();
  const char* q_thrice =
      "select author from books where author lexequal 'Nehru' "
      "threshold 0.25 using qgram";
  const char* q_once =
      "select author from books where author lexequal 'Smith' "
      "threshold 0.5 using naive";
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sql::ExecuteQuery(&session, q_thrice).ok());
  }
  ASSERT_TRUE(sql::ExecuteQuery(&session, q_once).ok());

  Result<sql::QueryResult> shown =
      sql::ExecuteQuery(&session, "show statements");
  ASSERT_TRUE(shown.ok()) << shown.status();
  ASSERT_EQ(shown->rows.size(), 2u);
  ASSERT_EQ(shown->column_names.size(), 10u);
  EXPECT_EQ(shown->column_names[0], "fingerprint");
  EXPECT_EQ(shown->column_names[1], "calls");
  // Default order is calls descending: the 3-call statement leads.
  EXPECT_EQ(shown->rows[0][1].AsInt64(), 3);
  EXPECT_EQ(shown->rows[1][1].AsInt64(), 1);
  // The rendered statement is the normalized text with its plan knob.
  const std::string top = shown->rows[0][9].AsString().text();
  EXPECT_NE(top.find("lexequal ?"), std::string::npos);
  EXPECT_NE(top.find("qgram"), std::string::npos);
  // Per-plan call counts render as name:count pairs.
  EXPECT_NE(shown->rows[0][8].AsString().text().find(":3"),
            std::string::npos);

  Result<sql::QueryResult> limited =
      sql::ExecuteQuery(&session, "show statements limit 1");
  ASSERT_TRUE(limited.ok()) << limited.status();
  EXPECT_EQ(limited->rows.size(), 1u);

  Result<sql::QueryResult> by_time = sql::ExecuteQuery(
      &session, "show statements order by total_time limit 5");
  ASSERT_TRUE(by_time.ok()) << by_time.status();
  ASSERT_EQ(by_time->rows.size(), 2u);
  EXPECT_GE(by_time->rows[0][4].AsInt64(),
            by_time->rows[1][4].AsInt64());

  Result<sql::QueryResult> reset =
      sql::ExecuteQuery(&session, "show statements reset");
  ASSERT_TRUE(reset.ok()) << reset.status();
  Result<sql::QueryResult> empty =
      sql::ExecuteQuery(&session, "show statements");
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_TRUE(empty->rows.empty());
}

TEST_F(StmtStatsEngineTest, ErrorsAreCountedPerFingerprint) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "statement recording compiled out";
#endif
  Session session = db_->CreateSession();
  QueryRequest req = QueryRequest::ThresholdSelect(
      "no_such_table", "author",
      text::TaggedString("Nehru", Language::kEnglish));
  Result<engine::QueryResult> result = session.Execute(req);
  EXPECT_FALSE(result.ok());

  std::vector<obs::StatementStats::Aggregate> snap =
      db_->stmt_stats()->Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].calls, 1u);
  EXPECT_EQ(snap[0].errors, 1u);
  // API-path queries fingerprint via the request-shape description.
  EXPECT_NE(snap[0].statement.find("no_such_table"),
            std::string::npos);
}

TEST_F(StmtStatsEngineTest, SlowQueryCaptureHonorsThreshold) {
#ifdef LEXEQUAL_NO_OBS
  GTEST_SKIP() << "trace capture compiled out";
#endif
  // Default: capture is off; nothing lands in the log.
  Session quiet = db_->CreateSession();
  ASSERT_TRUE(sql::ExecuteQuery(
      &quiet, "select author from books where author lexequal "
              "'Nehru' threshold 0.25").ok());
  EXPECT_EQ(db_->slow_query_log()->captured(), 0u);

  // A 1µs threshold makes every real query slow. The capture must
  // carry the full trace even though the session never set \trace.
  Session session = db_->CreateSession();
  session.set_slow_query_us(1);
  ASSERT_TRUE(sql::ExecuteQuery(
      &session, "select author from books where author lexequal "
                "'Nehru' threshold 0.25 using qgram").ok());
  ASSERT_GE(db_->slow_query_log()->captured(), 1u);
  std::vector<obs::SlowQueryEntry> latest =
      db_->slow_query_log()->Latest(1);
  ASSERT_EQ(latest.size(), 1u);
  const obs::SlowQueryEntry& e = latest[0];
  EXPECT_EQ(e.session_id, session.id());
  EXPECT_EQ(e.threshold_us, 1u);
  EXPECT_GE(e.wall_us, 1u);
  EXPECT_EQ(e.plan, "qgram-filter");
  EXPECT_NE(e.statement.find("lexequal ?"), std::string::npos);
  ASSERT_NE(e.trace, nullptr);
  EXPECT_FALSE(e.trace->ToString().empty());

  // Turning capture back off stops new entries.
  const uint64_t before = db_->slow_query_log()->captured();
  session.set_slow_query_us(0);
  ASSERT_TRUE(sql::ExecuteQuery(
      &session, "select author from books where author lexequal "
                "'Nero' threshold 0.25").ok());
  EXPECT_EQ(db_->slow_query_log()->captured(), before);
}

TEST_F(StmtStatsEngineTest, HealthSnapshotReflectsActivity) {
  Session session = db_->CreateSession();
  ASSERT_TRUE(sql::ExecuteQuery(
      &session, "select author from books where author lexequal "
                "'Nehru' threshold 0.25").ok());

  const engine::HealthSnapshot health = db_->Health();
  EXPECT_GT(health.uptime_us, 0u);
  EXPECT_EQ(health.tables, 1u);
  EXPECT_EQ(health.indexes, 2u);
  EXPECT_GE(health.sessions_created, 1u);
  EXPECT_EQ(health.in_flight_queries, 0);
  EXPECT_GT(health.bufpool_frames, 0u);
  EXPECT_GE(health.bufpool_frames, health.bufpool_resident);
#ifndef LEXEQUAL_NO_OBS
  EXPECT_GE(health.statements_recorded, 1u);
  EXPECT_GE(health.statement_fingerprints, 1u);
#endif

  const std::string text = health.ToString();
  EXPECT_NE(text.find("uptime"), std::string::npos);
  EXPECT_NE(text.find("buffer pool"), std::string::npos);
  const std::string json = health.ToJson();
  EXPECT_NE(json.find("\"tables\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"in_flight_queries\": 0"), std::string::npos);
}

}  // namespace
}  // namespace lexequal
