#include "g2p/latin_util.h"

#include <gtest/gtest.h>

#include "text/utf8.h"

namespace lexequal::g2p {
namespace {

TEST(LatinUtilTest, AsciiPassesThrough) {
  EXPECT_EQ(FoldLatinAccents("Nehru-42 x"), "Nehru-42 x");
  EXPECT_EQ(FoldLatinAccents(""), "");
}

TEST(LatinUtilTest, CommonEuropeanAccents) {
  EXPECT_EQ(FoldLatinAccents("René"), "Rene");       // é
  EXPECT_EQ(FoldLatinAccents("École"), "Ecole");     // É
  EXPECT_EQ(FoldLatinAccents("François"), "Francois");  // ç
  EXPECT_EQ(FoldLatinAccents("Müller"), "Muller");   // ü
  EXPECT_EQ(FoldLatinAccents("Español"), "Espanol"); // ñ
  EXPECT_EQ(FoldLatinAccents("Gödel"), "Godel");     // ö
  EXPECT_EQ(FoldLatinAccents("Åse"), "Ase");         // Å
  EXPECT_EQ(FoldLatinAccents("Straße"), "Strase");   // ß -> s
}

TEST(LatinUtilTest, ExtendedLatin) {
  // Š š Ž ž Ő ű Ł? (Ł not mapped -> dropped is acceptable; test the
  // mapped ones.)
  EXPECT_EQ(FoldLatinAccents("Škoda"), "Skoda");
  EXPECT_EQ(FoldLatinAccents("Žukov"), "Zukov");
  EXPECT_EQ(FoldLatinAccents("Erdős"), "Erdos");  // ő
}

TEST(LatinUtilTest, CombiningMarksDropped) {
  // e + combining acute = é decomposed.
  std::string decomposed = "e";
  text::AppendUtf8(0x0301, &decomposed);
  EXPECT_EQ(FoldLatinAccents(decomposed), "e");
}

TEST(LatinUtilTest, NonLatinDropped) {
  // Devanagari code points do not survive Latin folding.
  EXPECT_EQ(FoldLatinAccents(text::EncodeUtf8({0x0928, 'a', 0x0947})),
            "a");
}

}  // namespace
}  // namespace lexequal::g2p
