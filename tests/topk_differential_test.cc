// Differential coverage of ranked retrieval: top-K requests through
// the inverted index must return the exact sequence the brute-force
// kernel ranking returns — same rows, same scores, same deterministic
// tie order — across every bundled cost-model configuration, table
// probes and randomized out-of-table probes alike. The inverted index
// is allowed to *prune* work, never to change the answer.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/random.h"
#include "dataset/lexicon.h"
#include "engine/session.h"
#include "text/tagged_string.h"

namespace lexequal::engine {
namespace {

using phonetic::kPhonemeCount;
using phonetic::Phoneme;
using phonetic::PhonemeString;
using text::Language;
using text::TaggedString;

// The cost-model space reachable through the engine options: textbook
// Levenshtein, the default clustered model, and a near-Soundex model
// with cheap intra-cluster substitutions.
struct CostConfig {
  const char* name;
  double intra_cluster_cost;
  bool weak_phoneme_discount;
};
constexpr CostConfig kCostConfigs[] = {
    {"levenshtein", 1.0, false},
    {"clustered-default", 0.5, true},
    {"near-soundex", 0.25, true},
};

PhonemeString RandomPhonemes(Random* rng, size_t len) {
  std::vector<Phoneme> syms;
  for (size_t i = 0; i < len; ++i) {
    syms.push_back(static_cast<Phoneme>(rng->Uniform(kPhonemeCount)));
  }
  return PhonemeString(std::move(syms));
}

class TopKDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_topk_diff_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
    auto db = Engine::Open(path_.string(), 2048);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();

    Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
    ASSERT_TRUE(lexicon.ok());
    rows_ = dataset::GenerateConcatenatedDataset(lexicon.value(), 1200);
    ASSERT_GE(rows_.size(), 1200u);

    Schema schema({
        {"name", ValueType::kString, std::nullopt},
        {"name_phon", ValueType::kString, 0},
    });
    ASSERT_TRUE(db_->CreateTable("names", schema).ok());
    for (const dataset::LexiconEntry& e : rows_) {
      Tuple values{Value::String(e.text, e.language)};
      ASSERT_TRUE(db_->Insert("names", values).ok());
    }
    ASSERT_TRUE(db_->CreateIndex({.kind = IndexSpec::Kind::kInverted,
                                  .table = "names",
                                  .column = "name_phon",
                                  .q = 2}).ok());
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove(path_);
  }

  static LexEqualQueryOptions Options(const CostConfig& cfg,
                                      LexEqualPlan plan) {
    LexEqualQueryOptions o;
    o.match.intra_cluster_cost = cfg.intra_cluster_cost;
    o.match.weak_phoneme_discount = cfg.weak_phoneme_discount;
    o.hints.plan = plan;
    return o;
  }

  Result<QueryResult> TopKText(const std::string& table,
                               const std::string& column,
                               const TaggedString& query, size_t k,
                               const LexEqualQueryOptions& options) {
    Session session = db_->CreateSession();
    QueryRequest req = QueryRequest::TopK(table, column, query, k);
    req.options = options;
    return session.Execute(req);
  }

  Result<QueryResult> TopKPhon(const PhonemeString& probe, size_t k,
                               const LexEqualQueryOptions& options) {
    Session session = db_->CreateSession();
    QueryRequest req =
        QueryRequest::TopKPhonemes("names", "name", probe, k);
    req.options = options;
    return session.Execute(req);
  }

  // The two rankings must agree exactly: the invidx path computes its
  // final scores through the same MatchKernel as the brute force, so
  // even the doubles are bit-identical.
  static void ExpectSameRanking(const std::vector<TopKRow>& invidx,
                                const std::vector<TopKRow>& brute,
                                const std::string& label) {
    ASSERT_EQ(invidx.size(), brute.size()) << label;
    for (size_t i = 0; i < brute.size(); ++i) {
      EXPECT_EQ(invidx[i].score, brute[i].score)
          << label << " rank " << i;
      EXPECT_EQ(invidx[i].row[0].AsString().text(),
                brute[i].row[0].AsString().text())
          << label << " rank " << i;
    }
  }

  void CheckTextProbe(const CostConfig& cfg, const TaggedString& query,
                      size_t k, const std::string& label) {
    Result<QueryResult> invidx = TopKText(
        "names", "name", query, k, Options(cfg, LexEqualPlan::kAuto));
    ASSERT_TRUE(invidx.ok()) << label << ": " << invidx.status();
    Result<QueryResult> brute = TopKText(
        "names", "name", query, k, Options(cfg, LexEqualPlan::kNaiveUdf));
    ASSERT_TRUE(brute.ok()) << label << ": " << brute.status();
    EXPECT_EQ(invidx->stats.plan, LexEqualPlan::kInvertedIndex) << label;
    EXPECT_EQ(brute->stats.plan, LexEqualPlan::kNaiveUdf) << label;
    ExpectSameRanking(invidx->ranked, brute->ranked, label);
  }

  void CheckPhonemeProbe(const CostConfig& cfg, const PhonemeString& probe,
                         size_t k, const std::string& label) {
    Result<QueryResult> invidx =
        TopKPhon(probe, k, Options(cfg, LexEqualPlan::kAuto));
    ASSERT_TRUE(invidx.ok()) << label << ": " << invidx.status();
    Result<QueryResult> brute =
        TopKPhon(probe, k, Options(cfg, LexEqualPlan::kNaiveUdf));
    ASSERT_TRUE(brute.ok()) << label << ": " << brute.status();
    ExpectSameRanking(invidx->ranked, brute->ranked, label);
  }

  std::filesystem::path path_;
  std::unique_ptr<Engine> db_;
  std::vector<dataset::LexiconEntry> rows_;
};

TEST_F(TopKDifferentialTest, TableProbesMatchBruteForce) {
  for (const CostConfig& cfg : kCostConfigs) {
    for (size_t i : {2u, 71u, 419u}) {
      const TaggedString query(rows_[i].text, rows_[i].language);
      for (size_t k : {1u, 10u}) {
        CheckTextProbe(cfg, query, k,
                       std::string(cfg.name) + "/probe" +
                           std::to_string(i) + "/k" + std::to_string(k));
      }
    }
  }
}

TEST_F(TopKDifferentialTest, RandomizedPhonemeProbesMatchBruteForce) {
  Random rng(20260807);
  for (const CostConfig& cfg : kCostConfigs) {
    for (int round = 0; round < 4; ++round) {
      const PhonemeString probe =
          RandomPhonemes(&rng, 3 + rng.Uniform(10));
      CheckPhonemeProbe(cfg, probe, 5,
                        std::string(cfg.name) + "/random" +
                            std::to_string(round));
    }
  }
}

TEST_F(TopKDifferentialTest, KLargerThanTableRanksEveryRow) {
  const CostConfig& cfg = kCostConfigs[1];
  const TaggedString query(rows_[33].text, rows_[33].language);
  Result<QueryResult> invidx = TopKText(
      "names", "name", query, rows_.size() + 100,
      Options(cfg, LexEqualPlan::kAuto));
  ASSERT_TRUE(invidx.ok()) << invidx.status();
  Result<QueryResult> brute = TopKText(
      "names", "name", query, rows_.size() + 100,
      Options(cfg, LexEqualPlan::kNaiveUdf));
  ASSERT_TRUE(brute.ok()) << brute.status();
  EXPECT_EQ(invidx->ranked.size(), rows_.size());
  ExpectSameRanking(invidx->ranked, brute->ranked, "k-overflow");
  // Descending scores, no gaps.
  for (size_t i = 1; i < invidx->ranked.size(); ++i) {
    EXPECT_GE(invidx->ranked[i - 1].score, invidx->ranked[i].score);
  }
}

TEST_F(TopKDifferentialTest, HintedInvidxWithoutIndexIsNotFound) {
  Schema schema({
      {"word", ValueType::kString, std::nullopt},
      {"word_phon", ValueType::kString, 0},
  });
  ASSERT_TRUE(db_->CreateTable("bare", schema).ok());
  Tuple values{Value::String("Nehru", Language::kEnglish)};
  ASSERT_TRUE(db_->Insert("bare", values).ok());
  LexEqualQueryOptions o;
  o.hints.plan = LexEqualPlan::kInvertedIndex;
  Result<QueryResult> top = TopKText(
      "bare", "word", TaggedString("Nehru", Language::kEnglish), 3, o);
  EXPECT_FALSE(top.ok());
}

// Tiny tables are where the WAND bound usually cannot certify the
// ranking — the outcome goes inexact and the engine falls back. The
// answer must still be exact.
TEST_F(TopKDifferentialTest, TinyTableFallbackStaysExact) {
  Schema schema({
      {"word", ValueType::kString, std::nullopt},
      {"word_phon", ValueType::kString, 0},
  });
  ASSERT_TRUE(db_->CreateTable("tiny", schema).ok());
  for (size_t i = 0; i < 6; ++i) {
    Tuple values{Value::String(rows_[i].text, rows_[i].language)};
    ASSERT_TRUE(db_->Insert("tiny", values).ok());
  }
  ASSERT_TRUE(db_->CreateIndex({.kind = IndexSpec::Kind::kInverted,
                                .table = "tiny",
                                .column = "word_phon",
                                .q = 2}).ok());
  const TaggedString query(rows_[1].text, rows_[1].language);
  const CostConfig& cfg = kCostConfigs[1];
  Result<QueryResult> invidx = TopKText(
      "tiny", "word", query, 3, Options(cfg, LexEqualPlan::kAuto));
  ASSERT_TRUE(invidx.ok()) << invidx.status();
  Result<QueryResult> brute = TopKText(
      "tiny", "word", query, 3, Options(cfg, LexEqualPlan::kNaiveUdf));
  ASSERT_TRUE(brute.ok()) << brute.status();
  ExpectSameRanking(invidx->ranked, brute->ranked, "tiny");
}

}  // namespace
}  // namespace lexequal::engine
