#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace lexequal {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(StatusTest, AllCodesRoundTripThroughToString) {
  struct Case {
    Status status;
    bool (Status::*pred)() const;
  };
  const Case cases[] = {
      {Status::InvalidArgument("x"), &Status::IsInvalidArgument},
      {Status::NotFound("x"), &Status::IsNotFound},
      {Status::AlreadyExists("x"), &Status::IsAlreadyExists},
      {Status::OutOfRange("x"), &Status::IsOutOfRange},
      {Status::Corruption("x"), &Status::IsCorruption},
      {Status::IOError("x"), &Status::IsIOError},
      {Status::NotSupported("x"), &Status::IsNotSupported},
      {Status::ResourceExhausted("x"), &Status::IsResourceExhausted},
      {Status::NoResource("x"), &Status::IsNoResource},
      {Status::Internal("x"), &Status::IsInternal},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_TRUE((c.status.*c.pred)());
    EXPECT_NE(c.status.ToString().find(": x"), std::string::npos);
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  LEXEQUAL_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  int h;
  LEXEQUAL_ASSIGN_OR_RETURN(h, Half(x));
  LEXEQUAL_ASSIGN_OR_RETURN(h, Half(h));
  return h;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());
}

}  // namespace
}  // namespace lexequal
