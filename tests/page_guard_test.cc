// PageGuard pin discipline and the heap-iterator error path it
// closed: a Begin()-time fault must surface through status(), never
// masquerade as an empty heap.

#include "storage/page_guard.h"

#include <filesystem>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace lexequal::storage {
namespace {

class PageGuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_page_guard_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
    auto disk = DiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok()) << disk.status();
    disk_ = std::move(disk).value();
  }
  void TearDown() override {
    pool_.reset();
    disk_.reset();
    std::filesystem::remove(path_);
  }

  void MakePool(size_t frames) {
    pool_ = std::make_unique<BufferPool>(disk_.get(), frames);
  }

  std::filesystem::path path_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(PageGuardTest, DestructorReturnsPinToPool) {
  MakePool(1);
  {
    Result<PageGuard> guard = PageGuard::New(pool_.get());
    ASSERT_TRUE(guard.ok()) << guard.status();
    EXPECT_TRUE(guard->holds_page());
    // The single frame is pinned: a second page cannot be brought in.
    EXPECT_FALSE(PageGuard::New(pool_.get()).ok());
  }
  // Guard destroyed -> pin dropped -> the frame is reusable.
  Result<PageGuard> again = PageGuard::New(pool_.get());
  EXPECT_TRUE(again.ok()) << again.status();
}

TEST_F(PageGuardTest, ReleaseSurfacesUnpinAndEmptiesGuard) {
  MakePool(2);
  Result<PageGuard> guard = PageGuard::New(pool_.get());
  ASSERT_TRUE(guard.ok()) << guard.status();
  PageGuard g = std::move(guard).value();
  const PageId id = g.id();
  EXPECT_TRUE(g.Release().ok());
  EXPECT_FALSE(g.holds_page());
  // Double release is a harmless no-op, not a double unpin.
  EXPECT_TRUE(g.Release().ok());
  // The page really was unpinned: unpinning again via the pool fails.
  EXPECT_FALSE(pool_->UnpinPage(id, false).ok());
}

TEST_F(PageGuardTest, MoveTransfersThePin) {
  MakePool(1);
  Result<PageGuard> guard = PageGuard::New(pool_.get());
  ASSERT_TRUE(guard.ok()) << guard.status();
  PageGuard a = std::move(guard).value();
  const PageId id = a.id();
  PageGuard b = std::move(a);
  EXPECT_FALSE(a.holds_page());  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(b.holds_page());
  EXPECT_EQ(b.id(), id);
  // Moved-from guard's destructor must not unpin: b still holds the
  // only pin, so the frame stays unevictable.
  { PageGuard dead = std::move(a); }
  EXPECT_FALSE(PageGuard::New(pool_.get()).ok());
  EXPECT_TRUE(b.Release().ok());
}

TEST_F(PageGuardTest, MarkDirtyPersistsThroughRelease) {
  MakePool(2);
  PageId id;
  {
    Result<PageGuard> guard = PageGuard::New(pool_.get());
    ASSERT_TRUE(guard.ok()) << guard.status();
    PageGuard g = std::move(guard).value();
    id = g.id();
    g->data()[0] = 'Z';
    g.MarkDirty();
    ASSERT_TRUE(g.Release().ok());
  }
  ASSERT_TRUE(pool_->FlushAll().ok());
  char buf[kPageSize];
  ASSERT_TRUE(disk_->ReadPage(id, buf).ok());
  EXPECT_EQ(buf[0], 'Z');
}

TEST_F(PageGuardTest, FetchFailureYieldsEmptyResult) {
  MakePool(2);
  Result<PageGuard> guard = PageGuard::Fetch(pool_.get(), 9999);
  EXPECT_FALSE(guard.ok());
}

// Regression: HeapFile::Begin() used to swallow its Settle() error
// with a (void) cast, so an unreadable heap scanned as empty. The
// error now parks on the iterator and must be checked.
TEST_F(PageGuardTest, HeapIteratorSurfacesBeginFailure) {
  MakePool(2);
  Result<HeapFile> heap_or = HeapFile::Create(pool_.get());
  ASSERT_TRUE(heap_or.ok()) << heap_or.status();
  HeapFile heap = std::move(heap_or).value();
  ASSERT_TRUE(heap.Insert("rec").ok());

  // Exhaust the pool so Begin() cannot pin the first heap page.
  Result<PageGuard> hold1 = PageGuard::New(pool_.get());
  ASSERT_TRUE(hold1.ok()) << hold1.status();
  Result<PageGuard> hold2 = PageGuard::New(pool_.get());
  ASSERT_TRUE(hold2.ok()) << hold2.status();

  HeapFile::Iterator it = heap.Begin();
  EXPECT_FALSE(it.status().ok());
  EXPECT_FALSE(it.AtEnd()) << "I/O failure must not look like an "
                              "empty heap";
  EXPECT_FALSE(it.Next().ok());

  // Release the pins and the same heap scans fine.
  ASSERT_TRUE(hold1.value().Release().ok());
  ASSERT_TRUE(hold2.value().Release().ok());
  HeapFile::Iterator ok_it = heap.Begin();
  ASSERT_TRUE(ok_it.status().ok()) << ok_it.status();
  ASSERT_FALSE(ok_it.AtEnd());
  EXPECT_EQ(ok_it.record(), "rec");
}

}  // namespace
}  // namespace lexequal::storage
