// Regression for the BufferPoolStats data race: stats() used to read
// plain uint64_t fields while the pool's driver thread incremented
// them, which tsan flags and the standard calls UB. The counters are
// now std::atomic, so concurrent snapshots are safe even though the
// page table itself stays single-threaded (one driver at a time, per
// the pool's contract).
//
// Registered with the `parallel` ctest label so the tsan run
// (scripts/run_tsan_tests.sh) covers it.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace lexequal::storage {
namespace {

class BufferPoolStatsRaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_bufpool_race_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(BufferPoolStatsRaceTest, SnapshotsRaceCleanlyWithOneDriver) {
  auto disk = DiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  // A 4-frame pool over 16 pages: every fetch round evicts, so all
  // four counters (hits via refetch, misses, evictions, flushes) are
  // exercised while the readers snapshot.
  BufferPool pool(disk->get(), 4);

  constexpr int kPages = 16;
  std::vector<PageId> ids;
  for (int i = 0; i < kPages; ++i) {
    Result<Page*> page = pool.NewPage();
    ASSERT_TRUE(page.ok());
    ids.push_back(page.value()->page_id());
    ASSERT_TRUE(pool.UnpinPage(ids.back(), true).ok());
  }

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};

  // Readers: hammer stats() and assert each counter is individually
  // monotonic — torn reads or reordered plain loads would violate it.
  auto reader = [&] {
    BufferPoolStats last;
    while (!done.load(std::memory_order_acquire)) {
      const BufferPoolStats now = pool.stats();
      EXPECT_GE(now.hits, last.hits);
      EXPECT_GE(now.misses, last.misses);
      EXPECT_GE(now.evictions, last.evictions);
      EXPECT_GE(now.flushes, last.flushes);
      last = now;
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) readers.emplace_back(reader);

  // Single driver thread, per the pool's threading contract: fetch
  // rounds that overflow the frame count force evictions + flushes,
  // plus a re-fetch inside the round for guaranteed hits.
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < kPages; ++i) {
      Result<Page*> page = pool.FetchPage(ids[i]);
      ASSERT_TRUE(page.ok());
      Result<Page*> again = pool.FetchPage(ids[i]);  // guaranteed hit
      ASSERT_TRUE(again.ok());
      ASSERT_TRUE(pool.UnpinPage(ids[i], true).ok());
      ASSERT_TRUE(pool.UnpinPage(ids[i], round % 2 == 0).ok());
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  const BufferPoolStats final_stats = pool.stats();
  EXPECT_GT(reads.load(), 0u);
  EXPECT_GE(final_stats.hits, 200u * kPages);  // one refetch hit each
  EXPECT_GT(final_stats.misses, 0u);
  EXPECT_GT(final_stats.evictions, 0u);
  EXPECT_GT(final_stats.flushes, 0u);
}

}  // namespace
}  // namespace lexequal::storage
