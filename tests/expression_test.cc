#include "engine/expression.h"

#include <gtest/gtest.h>

namespace lexequal::engine {
namespace {

Tuple Row() {
  return Tuple{Value::Int64(7), Value::String("Nehru"),
               Value::Double(9.95)};
}

TEST(ExpressionTest, ColumnRefAndConst) {
  ColumnRefExpr col(1);
  Result<Value> v = col.Eval(Row());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString().text(), "Nehru");

  ColumnRefExpr bad(9);
  EXPECT_TRUE(bad.Eval(Row()).status().IsOutOfRange());

  ConstExpr c(Value::Int64(3));
  EXPECT_EQ(c.Eval(Row())->AsInt64(), 3);
}

TEST(ExpressionTest, CompareOps) {
  auto eq = CompareExpr(CompareOp::kEq,
                        std::make_unique<ColumnRefExpr>(0),
                        std::make_unique<ConstExpr>(Value::Int64(7)));
  EXPECT_EQ(eq.Eval(Row())->AsInt64(), 1);
  auto ne = CompareExpr(CompareOp::kNe,
                        std::make_unique<ColumnRefExpr>(0),
                        std::make_unique<ConstExpr>(Value::Int64(7)));
  EXPECT_EQ(ne.Eval(Row())->AsInt64(), 0);
}

TEST(ExpressionTest, TextOnlyComparisonIgnoresLanguageTag) {
  auto mk = [](CompareOp op) {
    return CompareExpr(
        op, std::make_unique<ConstExpr>(
                Value::String("x", text::Language::kEnglish)),
        std::make_unique<ConstExpr>(
            Value::String("x", text::Language::kFrench)));
  };
  EXPECT_EQ(mk(CompareOp::kEq).Eval({})->AsInt64(), 0);  // tags differ
  EXPECT_EQ(mk(CompareOp::kEqTextOnly).Eval({})->AsInt64(), 1);
  EXPECT_EQ(mk(CompareOp::kNeTextOnly).Eval({})->AsInt64(), 0);
}

TEST(ExpressionTest, LogicShortCircuits) {
  // The right side references an invalid column; short-circuiting
  // must avoid evaluating it.
  auto false_const = std::make_unique<ConstExpr>(Value::Int64(0));
  auto boom = std::make_unique<ColumnRefExpr>(99);
  LogicExpr and_expr(LogicOp::kAnd, std::move(false_const),
                     std::move(boom));
  Result<Value> v = and_expr.Eval(Row());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 0);

  auto true_const = std::make_unique<ConstExpr>(Value::Int64(1));
  auto boom2 = std::make_unique<ColumnRefExpr>(99);
  LogicExpr or_expr(LogicOp::kOr, std::move(true_const),
                    std::move(boom2));
  v = or_expr.Eval(Row());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 1);
}

TEST(ExpressionTest, NotAndTruthiness) {
  NotExpr not_zero(std::make_unique<ConstExpr>(Value::Int64(0)));
  EXPECT_EQ(not_zero.Eval({})->AsInt64(), 1);
  NotExpr not_str(std::make_unique<ConstExpr>(Value::String("x")));
  EXPECT_EQ(not_str.Eval({})->AsInt64(), 0);  // non-empty is truthy
  NotExpr not_empty(std::make_unique<ConstExpr>(Value::String("")));
  EXPECT_EQ(not_empty.Eval({})->AsInt64(), 1);
}

TEST(ExpressionTest, UdfRegistryAndCall) {
  UdfRegistry registry;
  ASSERT_TRUE(registry
                  .Register("ADD",
                            [](const std::vector<Value>& args)
                                -> Result<Value> {
                              if (args.size() != 2) {
                                return Status::InvalidArgument("arity");
                              }
                              return Value::Int64(args[0].AsInt64() +
                                                  args[1].AsInt64());
                            })
                  .ok());
  EXPECT_TRUE(registry.Register("ADD", nullptr).IsAlreadyExists());
  EXPECT_TRUE(registry.Lookup("NOPE").status().IsNotFound());

  const UdfFn* fn = registry.Lookup("ADD").value();
  std::vector<ExprPtr> args;
  args.push_back(std::make_unique<ColumnRefExpr>(0));
  args.push_back(std::make_unique<ConstExpr>(Value::Int64(5)));
  UdfExpr call(fn, std::move(args));
  Result<Value> v = call.Eval(Row());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), 12);
}

TEST(ExpressionTest, UdfErrorsPropagate) {
  UdfRegistry registry;
  ASSERT_TRUE(registry
                  .Register("FAIL",
                            [](const std::vector<Value>&) -> Result<Value> {
                              return Status::Internal("boom");
                            })
                  .ok());
  UdfExpr call(registry.Lookup("FAIL").value(), {});
  EXPECT_TRUE(call.Eval({}).status().IsInternal());
}

TEST(ExpressionTest, EvalPredicateHelper) {
  ConstExpr truthy(Value::Double(0.5));
  EXPECT_TRUE(EvalPredicate(truthy, {}).value());
  ConstExpr falsy(Value::Double(0.0));
  EXPECT_FALSE(EvalPredicate(falsy, {}).value());
}

}  // namespace
}  // namespace lexequal::engine
