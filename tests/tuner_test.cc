#include "dataset/tuner.h"

#include <gtest/gtest.h>

namespace lexequal::dataset {
namespace {

const Lexicon& Training() {
  // A 150-group training sample keeps the grid search fast.
  static const Lexicon& lex = *new Lexicon(
      Lexicon::BuildTrilingual().value().Sample(150));
  return lex;
}

TEST(LexiconSampleTest, KeepsGroupStructure) {
  const Lexicon& s = Training();
  EXPECT_EQ(s.group_count(), 150);
  EXPECT_EQ(s.group_sizes().size(), 150u);
  for (const LexiconEntry& e : s.entries()) {
    EXPECT_LT(e.tag, 150);
  }
  uint64_t total = 0;
  for (int n : s.group_sizes()) total += n;
  EXPECT_EQ(total, s.entries().size());
}

TEST(TunerTest, ObjectiveValues) {
  QualityResult q;
  q.recall = 0.8;
  q.precision = 0.6;
  EXPECT_NEAR(ObjectiveValue(TuneObjective::kF1, q), 0.6857, 1e-3);
  EXPECT_GT(ObjectiveValue(TuneObjective::kRecallFirst, q), 0.8);
  EXPECT_GT(ObjectiveValue(TuneObjective::kPrecisionFirst, q), 0.6);
  QualityResult zero;
  zero.recall = 0;
  zero.precision = 0;
  EXPECT_EQ(ObjectiveValue(TuneObjective::kF1, zero), 0.0);
}

TEST(TunerTest, FindsKneeRegionParameters) {
  TuneGrid grid;
  grid.thresholds = {0.0, 0.1, 0.2, 0.3, 0.5};
  grid.costs = {0.0, 0.25, 0.5, 1.0};
  TuneResult best = TuneParameters(Training(), TuneObjective::kF1, grid);
  EXPECT_EQ(best.grid.size(), grid.thresholds.size() * grid.costs.size());
  // The optimum must achieve a strong F1 and sit away from the
  // degenerate corners (threshold 0.5 collapses precision; threshold
  // 0 collapses recall at high cost).
  EXPECT_GT(best.objective_value, 0.8);
  EXPECT_GT(best.quality.recall, 0.7);
  EXPECT_GT(best.quality.precision, 0.7);
  EXPECT_LT(best.options.threshold, 0.5);
}

TEST(TunerTest, RecallFirstPicksLooserSettings) {
  TuneGrid grid;
  grid.thresholds = {0.1, 0.3, 0.5};
  grid.costs = {0.25};
  TuneResult f1 = TuneParameters(Training(), TuneObjective::kF1, grid);
  TuneResult recall =
      TuneParameters(Training(), TuneObjective::kRecallFirst, grid);
  EXPECT_GE(recall.quality.recall, f1.quality.recall);
  EXPECT_GE(recall.options.threshold, f1.options.threshold);
}

TEST(TunerTest, GridRespectsRequestedPoints) {
  TuneGrid grid;
  grid.thresholds = {0.2};
  grid.costs = {0.25};
  TuneResult best = TuneParameters(Training(), TuneObjective::kF1, grid);
  ASSERT_EQ(best.grid.size(), 1u);
  EXPECT_DOUBLE_EQ(best.options.threshold, 0.2);
  EXPECT_DOUBLE_EQ(best.options.intra_cluster_cost, 0.25);
}

}  // namespace
}  // namespace lexequal::dataset
