// Coverage sweeps: every converter must handle every string the
// dataset pipeline will ever feed it, and the full pipeline must be
// total over the embedded name lists.

#include <gtest/gtest.h>

#include <set>

#include "dataset/lexicon.h"
#include "g2p/g2p.h"
#include "g2p/render_indic.h"

namespace lexequal::g2p {
namespace {

using dataset::AllBaseNames;
using dataset::BaseNames;
using dataset::NameDomain;
using phonetic::PhonemeString;
using text::Language;

TEST(G2PCoverageTest, EnglishHandlesEveryBaseName) {
  const G2PRegistry& g2p = G2PRegistry::Default();
  for (std::string_view name : AllBaseNames()) {
    Result<PhonemeString> r = g2p.Transform(name, Language::kEnglish);
    ASSERT_TRUE(r.ok()) << name << ": " << r.status();
    EXPECT_FALSE(r->empty()) << name;
    // No pathological blowup: phoneme count stays near letter count.
    EXPECT_LE(r->size(), name.size() + 3) << name;
    EXPECT_GE(r->size() * 3, name.size()) << name;
  }
}

TEST(G2PCoverageTest, RenderersHandleEveryBaseName) {
  const G2PRegistry& g2p = G2PRegistry::Default();
  for (std::string_view name : AllBaseNames()) {
    Result<PhonemeString> eng = g2p.Transform(name, Language::kEnglish);
    ASSERT_TRUE(eng.ok()) << name;
    Result<std::string> deva = RenderDevanagari(eng.value());
    ASSERT_TRUE(deva.ok()) << name << ": " << deva.status();
    Result<std::string> tam = RenderTamil(eng.value());
    ASSERT_TRUE(tam.ok()) << name << ": " << tam.status();
    // And the rendered forms re-read without error.
    EXPECT_TRUE(g2p.Transform(deva.value(), Language::kHindi).ok())
        << name;
    EXPECT_TRUE(g2p.Transform(tam.value(), Language::kTamil).ok())
        << name;
  }
}

TEST(G2PCoverageTest, EveryLexiconEntryRoundTripsThroughIpa) {
  // The stored phonemic column is IPA text; it must parse back to the
  // identical phoneme string for every entry.
  Result<dataset::Lexicon> lex = dataset::Lexicon::BuildTrilingual();
  ASSERT_TRUE(lex.ok());
  for (const dataset::LexiconEntry& e : lex->entries()) {
    Result<PhonemeString> back =
        PhonemeString::FromIpa(e.phonemes.ToIpa());
    ASSERT_TRUE(back.ok()) << e.text;
    EXPECT_EQ(back.value(), e.phonemes) << e.text;
  }
}

TEST(G2PCoverageTest, DomainsDoNotDegenerate) {
  // Each domain contributes distinct phonemic strings (no mass
  // collapse that would trivialize matching).
  const G2PRegistry& g2p = G2PRegistry::Default();
  for (NameDomain domain : {NameDomain::kIndian, NameDomain::kAmerican,
                            NameDomain::kGeneric}) {
    std::set<std::string> distinct;
    const auto& names = BaseNames(domain);
    for (std::string_view name : names) {
      Result<PhonemeString> r = g2p.Transform(name, Language::kEnglish);
      ASSERT_TRUE(r.ok());
      distinct.insert(r->ToIpa());
    }
    EXPECT_GT(distinct.size(), names.size() * 9 / 10)
        << dataset::NameDomainName(domain);
  }
}

TEST(G2PCoverageTest, DeterministicAcrossCalls) {
  const G2PRegistry& g2p = G2PRegistry::Default();
  for (std::string_view name : {"Krishnamurthy", "Vishwanathan",
                                "Montgomery", "Phosphorus"}) {
    Result<PhonemeString> a = g2p.Transform(name, Language::kEnglish);
    Result<PhonemeString> b = g2p.Transform(name, Language::kEnglish);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value(), b.value());
  }
}

}  // namespace
}  // namespace lexequal::g2p
