// Property sweeps for the UTF-8 codec: round-trip identity over valid
// scalar values and total robustness over random byte soup.

#include <gtest/gtest.h>

#include "common/random.h"
#include "text/utf8.h"

namespace lexequal::text {
namespace {

CodePoint RandomScalar(Random* rng) {
  while (true) {
    CodePoint cp = static_cast<CodePoint>(rng->Uniform(0x110000));
    if (cp >= 0xD800 && cp <= 0xDFFF) continue;  // surrogates
    return cp;
  }
}

TEST(Utf8PropertyTest, EncodeDecodeIdentityOverRandomScalars) {
  Random rng(404);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<CodePoint> cps;
    const size_t n = rng.Uniform(32);
    for (size_t i = 0; i < n; ++i) cps.push_back(RandomScalar(&rng));
    const std::string encoded = EncodeUtf8(cps);
    EXPECT_TRUE(IsValidUtf8(encoded));
    EXPECT_EQ(DecodeUtf8(encoded), cps);
    Result<std::vector<CodePoint>> strict = DecodeUtf8Strict(encoded);
    ASSERT_TRUE(strict.ok());
    EXPECT_EQ(*strict, cps);
    EXPECT_EQ(CodePointCount(encoded), cps.size());
  }
}

TEST(Utf8PropertyTest, RandomBytesNeverCrashAndReencodeValid) {
  Random rng(505);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string soup;
    const size_t n = rng.Uniform(64);
    for (size_t i = 0; i < n; ++i) {
      soup.push_back(static_cast<char>(rng.Uniform(256)));
    }
    // Lenient decode is total; its output re-encodes as valid UTF-8.
    std::vector<CodePoint> cps = DecodeUtf8(soup);
    const std::string reencoded = EncodeUtf8(cps);
    EXPECT_TRUE(IsValidUtf8(reencoded));
    // Strict decode agrees with the validator.
    EXPECT_EQ(DecodeUtf8Strict(soup).ok(), IsValidUtf8(soup));
  }
}

TEST(Utf8PropertyTest, DecodeConsumesEveryByteExactlyOnce) {
  Random rng(606);
  for (int trial = 0; trial < 500; ++trial) {
    std::string soup;
    const size_t n = 1 + rng.Uniform(32);
    for (size_t i = 0; i < n; ++i) {
      soup.push_back(static_cast<char>(rng.Uniform(256)));
    }
    size_t pos = 0;
    size_t steps = 0;
    while (pos < soup.size()) {
      const size_t before = pos;
      (void)DecodeUtf8(soup, &pos);
      ASSERT_GT(pos, before);  // always advances: no infinite loops
      ++steps;
      ASSERT_LE(steps, soup.size());
    }
    EXPECT_EQ(pos, soup.size());
  }
}

}  // namespace
}  // namespace lexequal::text
