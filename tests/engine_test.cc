#include "engine/engine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>

#include "engine/session.h"
#include "g2p/render_indic.h"
#include "text/utf8.h"

namespace lexequal::engine {
namespace {

using text::Language;
using text::TaggedString;

// The Books.com catalog of the paper's Figure 1 (the rows relevant to
// multiscript matching).
struct BookRow {
  std::string author;
  Language lang;
  std::string title;
  double price;
};

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_engine_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
    auto db = Engine::Open(path_.string(), 512);
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(db).value();
    session_.emplace(db_->CreateSession());

    // Books(author STRING, author_phon derived, title STRING,
    //       price DOUBLE).
    Schema schema({
        {"author", ValueType::kString, std::nullopt},
        {"author_phon", ValueType::kString, 0},
        {"title", ValueType::kString, std::nullopt},
        {"price", ValueType::kDouble, std::nullopt},
    });
    ASSERT_TRUE(db_->CreateTable("books", schema).ok());

    // Hindi / Tamil forms of Nehru, as in Figure 1.
    const std::string nehru_hi =
        text::EncodeUtf8({0x0928, 0x0947, 0x0939, 0x0930, 0x0941});
    const std::string neru_ta =
        text::EncodeUtf8({0x0BA8, 0x0BC7, 0x0BB0, 0x0BC1});
    const std::vector<BookRow> rows = {
        {"Nehru", Language::kEnglish, "Discovery of India", 9.95},
        {nehru_hi, Language::kHindi, "Bharat Ek Khoj", 175},
        {neru_ta, Language::kTamil, "Asia Jothi", 250},
        {"Nero", Language::kEnglish, "The Coronation of the Virgin", 99},
        {"Descartes", Language::kFrench, "Les Meditations", 49},
        {"Sarri", Language::kGreek, "Paichnidia sto Piano", 15.5},
        {"Smith", Language::kEnglish, "A Book", 5},
    };
    for (const BookRow& r : rows) {
      Tuple values{Value::String(r.author, r.lang),
                   Value::String(r.title, Language::kEnglish),
                   Value::Double(r.price)};
      Result<storage::RID> rid = db_->Insert("books", values);
      ASSERT_TRUE(rid.ok()) << r.author << ": " << rid.status();
    }
  }
  void TearDown() override {
    session_.reset();
    db_.reset();
    std::filesystem::remove(path_);
  }

  static LexEqualQueryOptions Options(LexEqualPlan plan) {
    LexEqualQueryOptions o;
    o.match.threshold = 0.3;
    o.match.intra_cluster_cost = 0.25;
    o.hints.plan = plan;
    return o;
  }

  // WHERE author LexEQUAL `query` through the unified entry point.
  Result<QueryResult> Select(const TaggedString& query,
                             const LexEqualQueryOptions& options) {
    QueryRequest req = QueryRequest::ThresholdSelect("books", "author", query);
    req.options = options;
    return session_->Execute(req);
  }

  // books.author self-join through the unified entry point.
  Result<QueryResult> Join(const LexEqualQueryOptions& options,
                           uint64_t outer_limit = 0) {
    QueryRequest req = QueryRequest::Join("books", "author", "books", "author");
    req.options = options;
    req.outer_limit = outer_limit;
    return session_->Execute(req);
  }

  std::filesystem::path path_;
  std::unique_ptr<Engine> db_;
  std::optional<Session> session_;
};

TEST_F(EngineTest, InsertDerivesPhonemicColumn) {
  Result<TableInfo*> info = db_->GetTable("books");
  ASSERT_TRUE(info.ok());
  SeqScanExecutor scan(info.value());
  ASSERT_TRUE(scan.Init().ok());
  Tuple row;
  Result<bool> has = scan.Next(&row);
  ASSERT_TRUE(has.ok());
  ASSERT_TRUE(has.value());
  // Row 0 is English "Nehru": the phonemic cell holds its IPA.
  EXPECT_EQ(row[0].AsString().text(), "Nehru");
  EXPECT_EQ(row[1].AsString().text(), "nɛhru");
}

TEST_F(EngineTest, ExactSelectIsBinaryAcrossScripts) {
  // SQL:1999 semantics (the paper's Fig. 2 pain point): exact match
  // finds only the same-script row.
  Result<QueryResult> result = session_->Execute(QueryRequest::ExactSelect(
      "books", "author", Value::String("Nehru", Language::kEnglish)));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->stats.rows_scanned, 7u);
}

TEST_F(EngineTest, LexEqualSelectFindsAllScriptsNaive) {
  // The Fig. 3 query: Nehru across English/Hindi/Tamil.
  Result<QueryResult> result =
      Select(TaggedString("Nehru", Language::kEnglish),
             Options(LexEqualPlan::kNaiveUdf));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 3u) << "expected En+Hi+Ta Nehru rows";
  const QueryStats& stats = result->stats;
  EXPECT_EQ(stats.rows_scanned, 7u);
  // Every row is offered to the matcher; rows whose phonemic cell is
  // empty (untransformable) are filter rejections, not UDF calls.
  EXPECT_EQ(stats.match.tuples_scanned, 7u);
  EXPECT_EQ(stats.udf_calls, stats.match.dp_evaluations);
  EXPECT_EQ(stats.match.tuples_scanned,
            stats.match.filter_rejections + stats.match.dp_evaluations);
  EXPECT_EQ(stats.match.matches, 3u);
}

TEST_F(EngineTest, LexEqualSelectHonorsInLanguages) {
  LexEqualQueryOptions opts = Options(LexEqualPlan::kNaiveUdf);
  opts.in_languages = {Language::kHindi};
  Result<QueryResult> result =
      Select(TaggedString("Nehru", Language::kEnglish), opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsString().language(), Language::kHindi);
}

TEST_F(EngineTest, QGramPlanExactUnderLevenshteinCosts) {
  // With unit costs (intra cost 1, no weak discount) the q-gram
  // filters are lossless: the plan returns exactly the naive result.
  ASSERT_TRUE(db_->CreateIndex({.kind = IndexSpec::Kind::kQGram,
                      .table = "books",
                      .column = "author_phon",
                      .q = 2}).ok());
  LexEqualQueryOptions lev;
  lev.match.threshold = 0.3;
  lev.match.intra_cluster_cost = 1.0;
  lev.match.weak_phoneme_discount = false;
  lev.hints.plan = LexEqualPlan::kNaiveUdf;
  Result<QueryResult> naive =
      Select(TaggedString("Nehru", Language::kEnglish), lev);
  lev.hints.plan = LexEqualPlan::kQGramFilter;
  Result<QueryResult> qgram =
      Select(TaggedString("Nehru", Language::kEnglish), lev);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(qgram.ok()) << qgram.status();
  EXPECT_EQ(naive->rows.size(), qgram->rows.size());
  // The filters pruned: fewer UDF calls than the naive scan made.
  EXPECT_LT(qgram->stats.udf_calls, naive->stats.udf_calls);
}

TEST_F(EngineTest, PhoneticIndexPlanFindsClusterEqualRows) {
  ASSERT_TRUE(db_->CreateIndex({.kind = IndexSpec::Kind::kPhonetic,
                      .table = "books",
                      .column = "author_phon"}).ok());
  Result<QueryResult> result =
      Select(TaggedString("Nehru", Language::kEnglish),
             Options(LexEqualPlan::kPhoneticIndex));
  ASSERT_TRUE(result.ok()) << result.status();
  // The phonetic index may dismiss some true matches (paper §5.3
  // reports 4-5% false dismissals) but must at least find the exact
  // same-key English row, and scan far fewer rows than the table.
  EXPECT_GE(result->rows.size(), 1u);
  EXPECT_LE(result->stats.udf_calls, 3u);
}

TEST_F(EngineTest, PlansReturnSubsetsOfNaive) {
  ASSERT_TRUE(db_->CreateIndex({.kind = IndexSpec::Kind::kQGram,
                      .table = "books",
                      .column = "author_phon",
                      .q = 2}).ok());
  ASSERT_TRUE(db_->CreateIndex({.kind = IndexSpec::Kind::kPhonetic,
                      .table = "books",
                      .column = "author_phon"}).ok());
  for (const char* probe : {"Nehru", "Nero", "Smith", "Sarri"}) {
    TaggedString q(probe, Language::kEnglish);
    auto naive = Select(q, Options(LexEqualPlan::kNaiveUdf));
    auto qgram = Select(q, Options(LexEqualPlan::kQGramFilter));
    auto phon = Select(q, Options(LexEqualPlan::kPhoneticIndex));
    ASSERT_TRUE(naive.ok() && qgram.ok() && phon.ok());
    auto contains = [&](const std::vector<Tuple>& rows, const Tuple& t) {
      for (const Tuple& r : rows) {
        if (r[0] == t[0] && r[2] == t[2]) return true;
      }
      return false;
    };
    for (const Tuple& t : qgram->rows) {
      EXPECT_TRUE(contains(naive->rows, t)) << probe;
    }
    for (const Tuple& t : phon->rows) {
      EXPECT_TRUE(contains(naive->rows, t)) << probe;
    }
  }
}

TEST_F(EngineTest, LexEqualJoinFindsCrossScriptPairs) {
  // Fig. 5: authors who published in multiple languages.
  Result<QueryResult> result = Join(Options(LexEqualPlan::kNaiveUdf));
  ASSERT_TRUE(result.ok()) << result.status();
  // Nehru En/Hi/Ta: 3 ordered cross-language pairs each way = 6.
  EXPECT_EQ(result->pairs.size(), 6u);
}

TEST_F(EngineTest, LexEqualJoinWithIndexPlans) {
  ASSERT_TRUE(db_->CreateIndex({.kind = IndexSpec::Kind::kQGram,
                      .table = "books",
                      .column = "author_phon",
                      .q = 2}).ok());
  ASSERT_TRUE(db_->CreateIndex({.kind = IndexSpec::Kind::kPhonetic,
                      .table = "books",
                      .column = "author_phon"}).ok());
  auto naive = Join(Options(LexEqualPlan::kNaiveUdf));
  auto qgram = Join(Options(LexEqualPlan::kQGramFilter));
  auto phon = Join(Options(LexEqualPlan::kPhoneticIndex));
  ASSERT_TRUE(naive.ok() && qgram.ok() && phon.ok());
  // Both accelerated plans return subsets of the naive result (the
  // clustered cost model makes the q-gram filters lossy too; the
  // phonetic index trades recall for speed by design — paper §5.3).
  EXPECT_LE(qgram->pairs.size(), naive->pairs.size());
  EXPECT_GE(qgram->pairs.size(), 1u);
  EXPECT_LE(phon->pairs.size(), naive->pairs.size());
  EXPECT_GE(phon->pairs.size(), 1u);
}

TEST_F(EngineTest, JoinOuterLimitCapsWork) {
  Result<QueryResult> result =
      Join(Options(LexEqualPlan::kNaiveUdf), /*outer_limit=*/2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.rows_scanned, 2u);
}

TEST_F(EngineTest, UnsupportedLanguageRowsNeverMatch) {
  // A Japanese row gets an empty phonemic cell and never matches.
  Tuple values{
      Value::String("\xE5\xAF\xBA\xE4\xBA\x95", Language::kJapanese),
      Value::String("Aki no Kaze", Language::kEnglish),
      Value::Double(7500)};
  ASSERT_TRUE(db_->Insert("books", values).ok());
  Result<QueryResult> result =
      Select(TaggedString("Terai", Language::kEnglish),
             Options(LexEqualPlan::kNaiveUdf));
  ASSERT_TRUE(result.ok());
  for (const Tuple& r : result->rows) {
    EXPECT_NE(r[0].AsString().language(), Language::kJapanese);
  }
}

TEST_F(EngineTest, QueryInUnresolvableLanguageIsNoResource) {
  Result<QueryResult> result =
      Select(TaggedString("123", Language::kUnknown),
             Options(LexEqualPlan::kNaiveUdf));
  EXPECT_TRUE(result.status().IsNoResource());
  // Kanji has a converter (kana) but no reading without a dictionary.
  Result<QueryResult> kanji = Select(
      TaggedString("\xE5\xAF\xBA\xE4\xBA\x95", Language::kJapanese),
      Options(LexEqualPlan::kNaiveUdf));
  EXPECT_TRUE(kanji.status().IsInvalidArgument());
}

TEST_F(EngineTest, InsertValidation) {
  EXPECT_TRUE(db_->Insert("books", {Value::Int64(1)})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db_->Insert("nope", {}).status().IsNotFound());
  Schema bad({{"p", ValueType::kString, 5}});
  EXPECT_TRUE(db_->CreateTable("bad", bad).IsInvalidArgument());
  EXPECT_TRUE(
      db_->CreateTable("books", Schema()).IsAlreadyExists());
}

TEST_F(EngineTest, UdfRegistryLexEqualCallable) {
  Result<const UdfFn*> fn = db_->udf_registry()->Lookup("LEXEQUAL");
  ASSERT_TRUE(fn.ok());
  // nɛhru vs nehrʊ matches at the knee parameters.
  std::vector<Value> args{
      Value::String("nɛhru"), Value::String("nehrʊ"),
      Value::Double(0.3), Value::Double(0.25)};
  Result<Value> v = (**fn)(args);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->AsInt64(), 1);
  // Empty phonemic cells never match.
  std::vector<Value> empty_args{Value::String(""), Value::String(""),
                                Value::Double(1.0), Value::Double(0.0)};
  EXPECT_EQ((**fn)(empty_args)->AsInt64(), 0);
}

// Regression: Open() used to call .value() on the catalog heap's
// Result without checking it, which is undefined behavior when the
// pool is too small to host the catalog page. It must be a clean
// error instead.
TEST_F(EngineTest, OpenWithZeroFramePoolFailsCleanly) {
  const auto tiny = std::filesystem::temp_directory_path() /
                    "lexequal_engine_test_tiny.db";
  std::filesystem::remove(tiny);
  Result<std::unique_ptr<Engine>> db =
      Engine::Open(tiny.string(), /*pool_pages=*/0);
  EXPECT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsResourceExhausted()) << db.status();
  std::filesystem::remove(tiny);
}

}  // namespace
}  // namespace lexequal::engine
