#include "common/random.h"

#include <gtest/gtest.h>

#include <set>

namespace lexequal {
namespace {

TEST(RandomTest, DeterministicForEqualSeeds) {
  Random a(42);
  Random b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RandomTest, UniformStaysInRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(10), 10u);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random r(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U(0,1) is 0.5; a 10k sample lands well within ±0.05.
  EXPECT_NEAR(sum / 10000, 0.5, 0.05);
}

TEST(RandomTest, BernoulliRespectsProbability) {
  Random r(123);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (r.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.05);
  Random r2(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r2.Bernoulli(0.0));
  }
}

}  // namespace
}  // namespace lexequal
