#include "match/cost_model.h"

#include <gtest/gtest.h>

#include "match/edit_distance.h"

namespace lexequal::match {
namespace {

using phonetic::ClusterTable;
using phonetic::kPhonemeCount;
using phonetic::Phoneme;
using P = Phoneme;

TEST(LevenshteinCostTest, UnitCosts) {
  LevenshteinCost cost;
  EXPECT_EQ(cost.InsCost(P::kA), 1.0);
  EXPECT_EQ(cost.DelCost(P::kH), 1.0);
  EXPECT_EQ(cost.SubCost(P::kA, P::kA), 0.0);
  EXPECT_EQ(cost.SubCost(P::kA, P::kE), 1.0);
  EXPECT_EQ(cost.MinEditCost(), 1.0);
}

TEST(ClusteredCostTest, ParameterClamping) {
  ClusteredCost low(ClusterTable::Default(), -0.5);
  EXPECT_EQ(low.intra_cluster_cost(), 0.0);
  ClusteredCost high(ClusterTable::Default(), 2.0);
  EXPECT_EQ(high.intra_cluster_cost(), 1.0);
}

TEST(ClusteredCostTest, WeakDiscountToggles) {
  ClusteredCost with(ClusterTable::Default(), 0.5, true);
  ClusteredCost without(ClusterTable::Default(), 0.5, false);
  EXPECT_EQ(with.InsCost(P::kH), ClusteredCost::kWeakEditCost);
  EXPECT_EQ(with.DelCost(P::kSchwa), ClusteredCost::kWeakEditCost);
  EXPECT_EQ(with.InsCost(P::kK), 1.0);
  EXPECT_EQ(without.InsCost(P::kH), 1.0);
  EXPECT_EQ(with.MinEditCost(), 0.5);
  EXPECT_EQ(without.MinEditCost(), 1.0);
}

TEST(FeatureCostTest, IdentityIsFree) {
  FeatureCost cost;
  for (int i = 0; i < kPhonemeCount; ++i) {
    Phoneme p = static_cast<Phoneme>(i);
    EXPECT_EQ(cost.SubCost(p, p), 0.0);
  }
}

TEST(FeatureCostTest, SymmetricSubstitutions) {
  FeatureCost cost;
  for (int i = 0; i < kPhonemeCount; ++i) {
    for (int j = 0; j < kPhonemeCount; ++j) {
      Phoneme a = static_cast<Phoneme>(i);
      Phoneme b = static_cast<Phoneme>(j);
      EXPECT_DOUBLE_EQ(cost.SubCost(a, b), cost.SubCost(b, a));
    }
  }
}

TEST(FeatureCostTest, GradedByFeatureDistance) {
  FeatureCost cost;
  // Voicing-only difference is cheaper than a place change, which is
  // cheaper than a manner change, which is cheaper than vowel vs
  // consonant.
  const double voicing = cost.SubCost(P::kP, P::kB);
  const double place = cost.SubCost(P::kP, P::kT);
  const double manner = cost.SubCost(P::kP, P::kF);
  const double vowel_cons = cost.SubCost(P::kP, P::kA);
  EXPECT_LT(voicing, place);
  EXPECT_LT(place, manner);
  EXPECT_LE(manner, vowel_cons);
  EXPECT_EQ(vowel_cons, 1.0);
  // Aspiration is the cheapest distinction.
  EXPECT_LT(cost.SubCost(P::kP, P::kPh), voicing + 1e-12);
}

TEST(FeatureCostTest, DistinctPhonemesNeverFree) {
  FeatureCost cost;
  for (int i = 0; i < kPhonemeCount; ++i) {
    for (int j = 0; j < kPhonemeCount; ++j) {
      if (i == j) continue;
      EXPECT_GE(cost.SubCost(static_cast<Phoneme>(i),
                             static_cast<Phoneme>(j)),
                0.10);
    }
  }
}

TEST(FeatureCostTest, VowelFeatureGrading) {
  FeatureCost cost;
  // i vs ɪ: same height/backness/rounding -> floor cost.
  EXPECT_DOUBLE_EQ(cost.SubCost(P::kI, P::kIh), 0.10);
  // i vs u: backness + rounding differ.
  EXPECT_GT(cost.SubCost(P::kI, P::kU), cost.SubCost(P::kI, P::kY));
}

TEST(FeatureCostTest, WorksWithEditDistance) {
  FeatureCost cost;
  phonetic::PhonemeString a({P::kN, P::kEh, P::kH, P::kR, P::kU});
  phonetic::PhonemeString b({P::kN, P::kE, P::kH, P::kR, P::kUh});
  // Two near-vowel substitutions: small but positive distance.
  const double d = EditDistance(a, b, cost);
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1.0);
}

}  // namespace
}  // namespace lexequal::match
