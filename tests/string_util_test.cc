#include "common/string_util.h"

#include <gtest/gtest.h>

namespace lexequal {
namespace {

TEST(StringUtilTest, AsciiCaseConversion) {
  EXPECT_EQ(AsciiToLower("Nehru-42"), "nehru-42");
  EXPECT_EQ(AsciiToUpper("Nehru-42"), "NEHRU-42");
  // Non-ASCII bytes pass through untouched.
  EXPECT_EQ(AsciiToLower("Ren\xC3\xA9"), "ren\xC3\xA9");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(StringUtilTest, JoinInvertsSplit) {
  std::vector<std::string> pieces = {"a", "b", "c"};
  EXPECT_EQ(Join(pieces, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split(Join(pieces, "|"), '|'), pieces);
}

TEST(StringUtilTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace("abc"), "abc");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("lexequal", "lex"));
  EXPECT_FALSE(StartsWith("lex", "lexequal"));
  EXPECT_TRUE(EndsWith("lexequal", "equal"));
  EXPECT_FALSE(EndsWith("equal", "lexequal"));
}

TEST(StringUtilTest, CharacterClasses) {
  EXPECT_TRUE(IsAsciiAlpha('a'));
  EXPECT_TRUE(IsAsciiAlpha('Z'));
  EXPECT_FALSE(IsAsciiAlpha('1'));
  EXPECT_TRUE(IsAsciiVowel('e'));
  EXPECT_TRUE(IsAsciiVowel('U'));
  EXPECT_FALSE(IsAsciiVowel('y'));
  EXPECT_FALSE(IsAsciiVowel('b'));
}

}  // namespace
}  // namespace lexequal
