// Stress/property tests: the storage stack against in-memory
// reference models under randomized workloads and tiny buffer pools.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "common/random.h"
#include "index/btree.h"
#include "storage/heap_file.h"

namespace lexequal::storage {
namespace {

class StorageStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_stress_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(StorageStressTest, HeapFileMatchesReferenceModel) {
  auto disk = DiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  BufferPool pool(disk->get(), 4);  // deliberately tiny
  Result<HeapFile> heap = HeapFile::Create(&pool);
  ASSERT_TRUE(heap.ok());

  Random rng(123);
  std::map<RID, std::string> reference;
  std::vector<RID> live;
  for (int op = 0; op < 5000; ++op) {
    const uint64_t dice = rng.Uniform(10);
    if (dice < 6 || live.empty()) {
      // Insert a random-size record.
      std::string rec(1 + rng.Uniform(300), ' ');
      for (char& c : rec) c = static_cast<char>('a' + rng.Uniform(26));
      Result<RID> rid = heap->Insert(rec);
      ASSERT_TRUE(rid.ok()) << rid.status();
      reference[rid.value()] = rec;
      live.push_back(rid.value());
    } else if (dice < 8) {
      // Delete a random live record.
      size_t pick = rng.Uniform(live.size());
      RID rid = live[pick];
      ASSERT_TRUE(heap->Delete(rid).ok());
      reference.erase(rid);
      live.erase(live.begin() + pick);
    } else {
      // Read a random live record.
      size_t pick = rng.Uniform(live.size());
      RID rid = live[pick];
      Result<std::string> got = heap->Get(rid);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), reference[rid]);
    }
  }
  // Full iteration agrees with the reference.
  std::map<RID, std::string> seen;
  for (auto it = heap->Begin(); !it.AtEnd();) {
    seen[it.rid()] = it.record();
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(seen, reference);
  EXPECT_EQ(heap->record_count(), reference.size());
}

TEST_F(StorageStressTest, BTreeMatchesMultimapUnderMixedOps) {
  auto disk = DiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  BufferPool pool(disk->get(), 16);
  Result<index::BTree> tree = index::BTree::Create(&pool);
  ASSERT_TRUE(tree.ok());

  Random rng(321);
  std::multimap<uint64_t, RID> reference;
  std::vector<std::pair<uint64_t, RID>> live;
  for (int op = 0; op < 20000; ++op) {
    if (rng.Uniform(10) < 7 || live.empty()) {
      uint64_t key = rng.Uniform(500);
      RID rid{static_cast<PageId>(op), static_cast<uint16_t>(op % 13)};
      ASSERT_TRUE(tree->Insert(key, rid).ok());
      reference.emplace(key, rid);
      live.emplace_back(key, rid);
    } else {
      size_t pick = rng.Uniform(live.size());
      auto [key, rid] = live[pick];
      ASSERT_TRUE(tree->Delete(key, rid).ok());
      auto range = reference.equal_range(key);
      for (auto it = range.first; it != range.second; ++it) {
        if (it->second == rid) {
          reference.erase(it);
          break;
        }
      }
      live.erase(live.begin() + pick);
    }
  }
  EXPECT_EQ(tree->EntryCount().value(), reference.size());
  for (uint64_t key = 0; key < 500; key += 17) {
    auto range = reference.equal_range(key);
    std::vector<RID> expected;
    for (auto it = range.first; it != range.second; ++it) {
      expected.push_back(it->second);
    }
    std::sort(expected.begin(), expected.end());
    Result<std::vector<RID>> got = tree->ScanEqual(key);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, expected) << "key " << key;
  }
}

TEST_F(StorageStressTest, BufferPoolPinDisciplineUnderChurn) {
  auto disk = DiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  BufferPool pool(disk->get(), 8);
  // Allocate many pages, keep pins balanced, verify data integrity.
  Random rng(55);
  std::vector<PageId> pages;
  for (int i = 0; i < 64; ++i) {
    Result<Page*> p = pool.NewPage();
    ASSERT_TRUE(p.ok());
    std::memset((*p)->data(), 'A' + (i % 26), 64);
    pages.push_back((*p)->page_id());
    ASSERT_TRUE(pool.UnpinPage(pages.back(), true).ok());
  }
  for (int trial = 0; trial < 2000; ++trial) {
    PageId id = pages[rng.Uniform(pages.size())];
    Result<Page*> p = pool.FetchPage(id);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ((*p)->data()[5], static_cast<char>('A' + id % 26))
        << "page " << id;
    ASSERT_TRUE(pool.UnpinPage(id, false).ok());
  }
  EXPECT_GT(pool.stats().evictions, 50u);
  EXPECT_GT(pool.stats().hits, 0u);
}

}  // namespace
}  // namespace lexequal::storage
