// Cost-based plan selection: picker unit tests over fabricated
// statistics, ANALYZE persistence, and kAuto result identity with
// every manual plan.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "engine/plan_picker.h"
#include "engine/session.h"
#include "match/plan_cost.h"
#include "match/simd_dp.h"
#include "text/utf8.h"

namespace lexequal::engine {
namespace {

using text::Language;
using text::TaggedString;

// ---------------------------------------------------------------------
// Picker unit tests: fabricated stats, no database.

// One phonemic column (ordinal 1) with tunable shape.
TableStats MakeStats(uint64_t rows, double avg_len,
                     uint64_t distinct_keys, uint64_t distinct_qgrams,
                     uint64_t total_qgrams) {
  TableStats stats;
  stats.analyzed = true;
  stats.row_count = rows;
  PhonemicColumnStats col;
  col.column = 1;
  col.nonempty_rows = rows;
  col.total_phonemes = static_cast<uint64_t>(avg_len * rows);
  col.max_phonemes = static_cast<uint64_t>(avg_len) + 4;
  col.distinct_phonetic_keys = distinct_keys;
  col.max_phonetic_fanout = distinct_keys == 0 ? 0 : rows / distinct_keys;
  col.distinct_qgrams = distinct_qgrams;
  col.total_qgrams = total_qgrams;
  stats.columns.push_back(col);
  return stats;
}

PlanPickerInputs Inputs(const TableStats* stats, bool has_qgram,
                        bool has_phonetic, double threshold) {
  PlanPickerInputs in;
  in.stats = stats;
  in.phon_col = 1;
  in.has_qgram = has_qgram;
  in.has_phonetic = has_phonetic;
  in.query_len = 8.0;
  in.match.threshold = threshold;
  return in;
}

TEST(PlanPicker, SmallTablePrefersNaiveOverIndexOverhead) {
  const TableStats stats = MakeStats(50, 8.0, 40, 200, 450);
  const PlanChoice choice = ChooseLexEqualPlan(
      Inputs(&stats, /*has_qgram=*/true, /*has_phonetic=*/true, 0.25));
  EXPECT_EQ(choice.plan, LexEqualPlan::kNaiveUdf);
  EXPECT_TRUE(choice.used_stats);
  EXPECT_FALSE(choice.hinted);
  // All five concrete plans were priced.
  EXPECT_EQ(choice.estimates.size(), 5u);
}

TEST(PlanPicker, LargeTableTightThresholdPrefersPhoneticIndex) {
  const TableStats stats = MakeStats(200000, 8.0, 50000, 2000, 1800000);
  const PlanChoice choice = ChooseLexEqualPlan(
      Inputs(&stats, /*has_qgram=*/true, /*has_phonetic=*/true, 0.25));
  EXPECT_EQ(choice.plan, LexEqualPlan::kPhoneticIndex);
  const PlanCostEstimate* phon =
      choice.Estimate(LexEqualPlan::kPhoneticIndex);
  ASSERT_NE(phon, nullptr);
  const PlanCostEstimate* naive =
      choice.Estimate(LexEqualPlan::kNaiveUdf);
  ASSERT_NE(naive, nullptr);
  EXPECT_LT(phon->cost, naive->cost);
}

TEST(PlanPicker, LooseThresholdGatesPhoneticAndPicksQGram) {
  const TableStats stats = MakeStats(5000, 8.0, 1500, 500, 45000);
  const PlanChoice choice = ChooseLexEqualPlan(
      Inputs(&stats, /*has_qgram=*/true, /*has_phonetic=*/true, 0.40));
  EXPECT_EQ(choice.plan, LexEqualPlan::kQGramFilter);
  const PlanCostEstimate* phon =
      choice.Estimate(LexEqualPlan::kPhoneticIndex);
  ASSERT_NE(phon, nullptr);
  EXPECT_FALSE(phon->eligible);  // 0.40 > kPhoneticIndexThresholdGate
  EXPECT_FALSE(phon->note.empty());
}

TEST(PlanPicker, ParallelScanWinsOnHugeUnindexedTableWithThreads) {
  const TableStats stats = MakeStats(1000000, 8.0, 250000, 0, 0);
  PlanPickerInputs in =
      Inputs(&stats, /*has_qgram=*/false, /*has_phonetic=*/false, 0.25);
  in.hints.threads = 8;  // explicit: the host may be single-core
  const PlanChoice choice = ChooseLexEqualPlan(in);
  EXPECT_EQ(choice.plan, LexEqualPlan::kParallelScan);
}

TEST(PlanPicker, HintForcesPlanButEstimatesRemain) {
  const TableStats stats = MakeStats(200000, 8.0, 50000, 2000, 1800000);
  PlanPickerInputs in =
      Inputs(&stats, /*has_qgram=*/true, /*has_phonetic=*/true, 0.25);
  in.hints.plan = LexEqualPlan::kNaiveUdf;
  const PlanChoice choice = ChooseLexEqualPlan(in);
  EXPECT_EQ(choice.plan, LexEqualPlan::kNaiveUdf);
  EXPECT_TRUE(choice.hinted);
  EXPECT_TRUE(choice.used_stats);
  EXPECT_EQ(choice.estimates.size(), 5u);  // EXPLAIN still sees costs
}

TEST(PlanPicker, UnanalyzedFallsBackToHeuristicOrder) {
  // No stats at all: index-first preference, threshold-gated.
  PlanPickerInputs in =
      Inputs(nullptr, /*has_qgram=*/true, /*has_phonetic=*/true, 0.25);
  EXPECT_EQ(ChooseLexEqualPlan(in).plan, LexEqualPlan::kPhoneticIndex);
  EXPECT_FALSE(ChooseLexEqualPlan(in).used_stats);

  in.match.threshold = 0.45;  // above the gate: phonetic is lossy
  EXPECT_EQ(ChooseLexEqualPlan(in).plan, LexEqualPlan::kQGramFilter);

  in.has_qgram = false;
  EXPECT_EQ(ChooseLexEqualPlan(in).plan, LexEqualPlan::kNaiveUdf);

  // Unanalyzed stats object behaves like no stats.
  const TableStats unanalyzed;
  in = Inputs(&unanalyzed, true, true, 0.25);
  const PlanChoice choice = ChooseLexEqualPlan(in);
  EXPECT_EQ(choice.plan, LexEqualPlan::kPhoneticIndex);
  EXPECT_FALSE(choice.used_stats);
  EXPECT_TRUE(choice.estimates.empty());
}

TEST(PlanPicker, MissingIndexesAreIneligible) {
  const TableStats stats = MakeStats(200000, 8.0, 50000, 2000, 1800000);
  const PlanChoice choice = ChooseLexEqualPlan(
      Inputs(&stats, /*has_qgram=*/false, /*has_phonetic=*/false, 0.25));
  EXPECT_FALSE(choice.Estimate(LexEqualPlan::kQGramFilter)->eligible);
  EXPECT_FALSE(choice.Estimate(LexEqualPlan::kPhoneticIndex)->eligible);
  EXPECT_TRUE(choice.plan == LexEqualPlan::kNaiveUdf ||
              choice.plan == LexEqualPlan::kParallelScan);
}

// ---------------------------------------------------------------------
// Verify-path pricing: the picker charges the kernel path MatchBatch
// will actually take (bit-parallel / SIMD lanes / banded) instead of
// flat banded-DP pricing for every cost model.

TEST(PlanPicker, VerifyPathMirrorsKernelDispatch) {
  using match::ClassifyVerifyPath;
  using match::VerifyPath;
  // Textbook Levenshtein with the probe inside one 64-bit block.
  EXPECT_EQ(ClassifyVerifyPath(8.0, 1.0, false),
            VerifyPath::kBitParallel);
  // Unit costs but too long for the word-parallel block.
  EXPECT_EQ(ClassifyVerifyPath(100.0, 1.0, false), VerifyPath::kBanded);
  // Off-grid substitution weight: no 1/128 fixed-point form exists,
  // so the kernel falls back to the scalar banded DP.
  EXPECT_EQ(ClassifyVerifyPath(8.0, 0.3, true), VerifyPath::kBanded);
  // The default clustered model is on-grid; the lane path is priced
  // exactly when this host resolves a real vector ISA (the scalar
  // emulation backend exists for coverage, not speed).
  const match::SimdBackend best = match::BestSimdBackend();
  const bool vector_isa = best == match::SimdBackend::kAvx2 ||
                          best == match::SimdBackend::kNeon;
  EXPECT_EQ(ClassifyVerifyPath(8.0, 0.5, true),
            vector_isa ? VerifyPath::kSimdLanes : VerifyPath::kBanded);
}

TEST(PlanPicker, PerPathVerifyCostsAreOrdered) {
  using match::EstimateVerifyCost;
  using match::VerifyPath;
  const match::PlanCostParams p;
  // Benched shape: 8-phoneme probe against 16-phoneme rows, e = 0.25.
  const double banded =
      EstimateVerifyCost(8.0, 16.0, 0.25, p, VerifyPath::kBanded);
  const double simd =
      EstimateVerifyCost(8.0, 16.0, 0.25, p, VerifyPath::kSimdLanes);
  const double bitp =
      EstimateVerifyCost(8.0, 16.0, 0.25, p, VerifyPath::kBitParallel);
  const double general =
      EstimateVerifyCost(8.0, 16.0, 0.25, p, VerifyPath::kGeneral);
  EXPECT_LT(bitp, simd);      // word ops beat lane cells
  EXPECT_LT(simd, banded);    // lane DP beats banded at bench shapes
  EXPECT_LT(banded, general); // the band never costs more than full
  // The defaulted argument keeps historical callers on banded pricing.
  EXPECT_EQ(EstimateVerifyCost(8.0, 16.0, 0.25, p), banded);
}

TEST(PlanPicker, RecalibratedPricingKeepsBenchedAutoChoices) {
  // The per-path constants only ever lower the verify term, so the
  // kAuto winners of the benched workload shapes must not flip.
  // Assert them for the default clustered model (lane- or banded-
  // priced depending on host ISA) and for textbook Levenshtein
  // (bit-parallel priced).
  for (const bool levenshtein : {false, true}) {
    auto pick = [&](PlanPickerInputs in) {
      if (levenshtein) {
        in.match.intra_cluster_cost = 1.0;
        in.match.weak_phoneme_discount = false;
      }
      return ChooseLexEqualPlan(in);
    };
    const TableStats small = MakeStats(50, 8.0, 40, 200, 450);
    const PlanChoice small_choice = pick(Inputs(&small, true, true, 0.25));
    EXPECT_EQ(small_choice.plan, LexEqualPlan::kNaiveUdf);
    // "Unchanged or strictly cheaper": the naive estimate is never
    // above what flat banded pricing would have charged it.
    const PlanCostEstimate* naive =
        small_choice.Estimate(LexEqualPlan::kNaiveUdf);
    ASSERT_NE(naive, nullptr);
    const double banded_naive =
        50.0 * 1.0 + 50.0 * match::EstimateVerifyCost(8.0, 8.0, 0.25);
    EXPECT_LE(naive->cost, banded_naive + 1e-9);

    const TableStats large = MakeStats(200000, 8.0, 50000, 2000, 1800000);
    EXPECT_EQ(pick(Inputs(&large, true, true, 0.25)).plan,
              LexEqualPlan::kPhoneticIndex);
    const TableStats mid = MakeStats(5000, 8.0, 1500, 500, 45000);
    EXPECT_EQ(pick(Inputs(&mid, true, true, 0.40)).plan,
              LexEqualPlan::kQGramFilter);
    const TableStats huge = MakeStats(1000000, 8.0, 250000, 0, 0);
    PlanPickerInputs unindexed = Inputs(&huge, false, false, 0.25);
    unindexed.hints.threads = 8;
    EXPECT_EQ(pick(unindexed).plan, LexEqualPlan::kParallelScan);
  }
}

// ---------------------------------------------------------------------
// Descriptor-table guarantees (the shell/EXPLAIN surfaces feed on it).

TEST(PlanTable, EveryPlanHasANameAndHint) {
  EXPECT_EQ(kLexEqualPlanCount,
            static_cast<size_t>(LexEqualPlan::kAuto) + 1);
  for (const LexEqualPlanDesc& desc : kLexEqualPlans) {
    EXPECT_FALSE(desc.name.empty());
    EXPECT_FALSE(desc.hint.empty());
    EXPECT_FALSE(desc.summary.empty());
    EXPECT_EQ(LexEqualPlanName(desc.plan), desc.name);
  }
  EXPECT_EQ(LexEqualPlanName(LexEqualPlan::kAuto), "auto");
}

// ---------------------------------------------------------------------
// End-to-end tests against a real database.

class AutoPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_autoplan_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  void PopulateBooks(Engine* db) {
    Schema schema({
        {"author", ValueType::kString, std::nullopt},
        {"author_phon", ValueType::kString, 0},
        {"title", ValueType::kString, std::nullopt},
    });
    ASSERT_TRUE(db->CreateTable("books", schema).ok());
    auto add = [&](const std::string& author, Language lang,
                   const char* title) {
      Tuple values{Value::String(author, lang),
                   Value::String(title, Language::kEnglish)};
      ASSERT_TRUE(db->Insert("books", values).ok());
    };
    add("Nehru", Language::kEnglish, "Discovery of India");
    add("Nehru", Language::kEnglish, "Glimpses of World History");
    add(text::EncodeUtf8({0x0928, 0x0947, 0x0939, 0x0930, 0x0941}),
        Language::kHindi, "Bharat Ek Khoj");
    add("Smith", Language::kEnglish, "A Book");
    add("Sarri", Language::kEnglish, "Another Book");
  }

  static void BuildBothIndexes(Engine* db) {
    ASSERT_TRUE(db->CreateIndex({.kind = IndexSpec::Kind::kQGram,
                                 .table = "books",
                                 .column = "author_phon",
                                 .q = 2})
                    .ok());
    ASSERT_TRUE(db->CreateIndex({.kind = IndexSpec::Kind::kPhonetic,
                                 .table = "books",
                                 .column = "author_phon"})
                    .ok());
  }

  static Result<QueryResult> SelectNehru(
      Session* session, const LexEqualQueryOptions& options) {
    QueryRequest req = QueryRequest::ThresholdSelect(
        "books", "author", TaggedString("Nehru", Language::kEnglish));
    req.options = options;
    return session->Execute(req);
  }

  std::filesystem::path path_;
};

TEST_F(AutoPlanTest, AnalyzeCollectsColumnStatistics) {
  auto db = Engine::Open(path_.string(), 256);
  ASSERT_TRUE(db.ok());
  PopulateBooks(db->get());
  ASSERT_TRUE((*db)->Analyze("books").ok());

  const TableStats& stats = (*db)->GetTable("books").value()->stats;
  ASSERT_TRUE(stats.analyzed);
  EXPECT_EQ(stats.row_count, 5u);
  const PhonemicColumnStats* col = stats.ForColumn(1);
  ASSERT_NE(col, nullptr);
  EXPECT_EQ(col->nonempty_rows, 5u);
  EXPECT_GT(col->total_phonemes, 0u);
  EXPECT_GT(col->distinct_phonetic_keys, 0u);
  // Two identical "Nehru" rows (plus the Hindi cognate) share a key.
  EXPECT_GE(col->max_phonetic_fanout, 2u);
  EXPECT_GT(col->distinct_qgrams, 0u);
  EXPECT_GT(col->total_qgrams, col->distinct_qgrams);
}

TEST_F(AutoPlanTest, AnalyzedStatsSurviveReopen) {
  TableStats before;
  {
    auto db = Engine::Open(path_.string(), 256);
    ASSERT_TRUE(db.ok());
    PopulateBooks(db->get());
    BuildBothIndexes(db->get());
    ASSERT_TRUE((*db)->AnalyzeAll().ok());
    before = (*db)->GetTable("books").value()->stats;
    ASSERT_TRUE((*db)->Flush().ok());
  }
  auto db = Engine::Open(path_.string(), 256);
  ASSERT_TRUE(db.ok()) << db.status();
  const TableStats& after = (*db)->GetTable("books").value()->stats;
  ASSERT_TRUE(after.analyzed);
  EXPECT_EQ(after.row_count, before.row_count);
  ASSERT_EQ(after.columns.size(), before.columns.size());
  const PhonemicColumnStats* b = before.ForColumn(1);
  const PhonemicColumnStats* a = after.ForColumn(1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->total_phonemes, b->total_phonemes);
  EXPECT_EQ(a->distinct_phonetic_keys, b->distinct_phonetic_keys);
  EXPECT_EQ(a->distinct_qgrams, b->distinct_qgrams);
  EXPECT_EQ(a->qgram_q, b->qgram_q);
}

TEST_F(AutoPlanTest, UnanalyzedDatabaseStillOpensAndQueries) {
  // A snapshot written without ANALYZE (the pre-optimizer format, give
  // or take the marker) must reopen as "unanalyzed" and keep working.
  {
    auto db = Engine::Open(path_.string(), 256);
    ASSERT_TRUE(db.ok());
    PopulateBooks(db->get());
    BuildBothIndexes(db->get());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  auto db = Engine::Open(path_.string(), 256);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_FALSE((*db)->GetTable("books").value()->stats.analyzed);

  // Hint-free query runs on the documented heuristic.
  Session session = (*db)->CreateSession();
  LexEqualQueryOptions options;
  options.match.threshold = 0.25;
  Result<QueryResult> result = SelectNehru(&session, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->rows.size(), 2u);
  EXPECT_TRUE(result->stats.plan_was_auto);
  EXPECT_FALSE(result->stats.plan_used_stats);
}

TEST_F(AutoPlanTest, LastQueryStatsReportsResolvedPlan) {
  auto db = Engine::Open(path_.string(), 256);
  ASSERT_TRUE(db.ok());
  PopulateBooks(db->get());
  BuildBothIndexes(db->get());
  ASSERT_TRUE((*db)->Analyze("books").ok());

  Session session = (*db)->CreateSession();
  LexEqualQueryOptions options;  // kAuto
  Result<QueryResult> result = SelectNehru(&session, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // The result's stats and the session's compat accessor agree.
  const QueryStats& s = session.LastQueryStats();
  // Five rows: every plan beats the fixed index overhead via stats.
  EXPECT_EQ(s.plan, LexEqualPlan::kNaiveUdf);
  EXPECT_TRUE(s.plan_was_auto);
  EXPECT_TRUE(s.plan_used_stats);
  EXPECT_GT(s.est_cost, 0.0);
  EXPECT_EQ(s.results, result->rows.size());
  EXPECT_EQ(result->stats.plan, s.plan);
  EXPECT_EQ(result->stats.results, s.results);

  // A hint overrides the pick and is reported as such.
  options.hints.plan = LexEqualPlan::kQGramFilter;
  ASSERT_TRUE(SelectNehru(&session, options).ok());
  EXPECT_EQ(session.LastQueryStats().plan, LexEqualPlan::kQGramFilter);
  EXPECT_FALSE(session.LastQueryStats().plan_was_auto);
}

TEST_F(AutoPlanTest, AutoMatchesEveryManualPlanRowForRow) {
  auto db = Engine::Open(path_.string(), 256);
  ASSERT_TRUE(db.ok());
  PopulateBooks(db->get());
  BuildBothIndexes(db->get());
  ASSERT_TRUE((*db)->Analyze("books").ok());

  // Threshold 0 + unit costs: all four access paths are exact (equal
  // phoneme strings <=> equal grouped keys), so row identity holds.
  Session session = (*db)->CreateSession();
  LexEqualQueryOptions options;
  options.match.threshold = 0.0;
  options.match.intra_cluster_cost = 1.0;

  auto titles = [&](LexEqualPlan plan) {
    options.hints.plan = plan;
    options.hints.threads = plan == LexEqualPlan::kParallelScan ? 2 : 0;
    Result<QueryResult> result = SelectNehru(&session, options);
    EXPECT_TRUE(result.ok()) << result.status();
    std::vector<std::string> out;
    for (const Tuple& row : result->rows) {
      out.push_back(row[2].AsString().text());
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  const std::vector<std::string> reference =
      titles(LexEqualPlan::kNaiveUdf);
  ASSERT_EQ(reference.size(), 2u);  // both English "Nehru" rows
  for (LexEqualPlan plan :
       {LexEqualPlan::kQGramFilter, LexEqualPlan::kPhoneticIndex,
        LexEqualPlan::kParallelScan, LexEqualPlan::kAuto}) {
    EXPECT_EQ(titles(plan), reference)
        << "plan " << LexEqualPlanName(plan);
  }
}

}  // namespace
}  // namespace lexequal::engine
