#include "g2p/render_latin.h"

#include <gtest/gtest.h>

#include "dataset/lexicon.h"
#include "g2p/g2p.h"
#include "g2p/render_indic.h"
#include "dataset/metrics.h"
#include "match/lexequal.h"

namespace lexequal::g2p {
namespace {

using phonetic::PhonemeString;
using text::Language;

const G2PRegistry& Reg() { return G2PRegistry::Default(); }

TEST(RenderLatinTest, ReadableRomanizations) {
  struct Case {
    const char* name;
    const char* expected;
  };
  const Case cases[] = {
      {"Nehru", "nehru"},
      {"Sharma", "sharma"},
      {"Jack", "jak"},
      {"Philip", "filip"},
  };
  for (const Case& c : cases) {
    Result<PhonemeString> phon = Reg().Transform(c.name,
                                                 Language::kEnglish);
    ASSERT_TRUE(phon.ok()) << c.name;
    EXPECT_EQ(RenderLatin(phon.value()), c.expected) << c.name;
  }
}

TEST(RenderLatinTest, TotalOverInventory) {
  std::vector<phonetic::Phoneme> all;
  for (int i = 0; i < phonetic::kPhonemeCount; ++i) {
    all.push_back(static_cast<phonetic::Phoneme>(i));
  }
  std::string r = RenderLatin(PhonemeString(std::move(all)));
  EXPECT_GT(r.size(), static_cast<size_t>(phonetic::kPhonemeCount) / 2);
  for (char c : r) {
    EXPECT_TRUE(c >= 'a' && c <= 'z') << c;
  }
}

TEST(RenderLatinTest, RomanizesIndicText) {
  // The display path: show a Devanagari match to a Latin-script user.
  Result<PhonemeString> eng = Reg().Transform("Krishna",
                                              Language::kEnglish);
  ASSERT_TRUE(eng.ok());
  Result<std::string> deva = RenderDevanagari(eng.value());
  ASSERT_TRUE(deva.ok());
  Result<PhonemeString> hindi =
      Reg().Transform(deva.value(), Language::kHindi);
  ASSERT_TRUE(hindi.ok());
  std::string roman = RenderLatin(hindi.value());
  EXPECT_NE(roman.find("kri"), std::string::npos) << roman;
}

TEST(RenderGreekTest, RoundTripsStayClose) {
  match::LexEqualMatcher matcher(
      {.threshold = 0.3, .intra_cluster_cost = 0.25});
  for (const char* name : {"Nehru", "Katerina", "Sandra", "Miller",
                           "Bangalore", "Hydrogen"}) {
    Result<PhonemeString> eng = Reg().Transform(name, Language::kEnglish);
    ASSERT_TRUE(eng.ok()) << name;
    Result<std::string> greek = RenderGreek(eng.value());
    ASSERT_TRUE(greek.ok()) << name << ": " << greek.status();
    EXPECT_EQ(text::DetectScript(greek.value()), text::Script::kGreek)
        << name;
    Result<PhonemeString> back =
        Reg().Transform(greek.value(), Language::kGreek);
    ASSERT_TRUE(back.ok()) << name << " [" << greek.value()
                           << "]: " << back.status();
    EXPECT_TRUE(matcher.MatchPhonemes(eng.value(), back.value()))
        << name << " eng=" << eng.value().ToIpa()
        << " back=" << back.value().ToIpa();
  }
}

TEST(QuadrilingualLexiconTest, GreekEntriesJoinTheGroups) {
  Result<dataset::Lexicon> lex = dataset::Lexicon::BuildMultiscript(true);
  ASSERT_TRUE(lex.ok()) << lex.status();
  // 4 entries per group now.
  int greek_count = 0;
  for (const dataset::LexiconEntry& e : lex->entries()) {
    if (e.language == Language::kGreek) ++greek_count;
  }
  EXPECT_EQ(greek_count * 4, static_cast<int>(lex->entries().size()));
  // Quality at the operating point stays in the useful band with the
  // fourth script included.
  dataset::QualityResult q = dataset::EvaluateMatchQuality(
      lex->Sample(200), {.threshold = 0.2, .intra_cluster_cost = 0.25});
  EXPECT_GT(q.recall, 0.8);
  EXPECT_GT(q.precision, 0.6);
}

}  // namespace
}  // namespace lexequal::g2p
