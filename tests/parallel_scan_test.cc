// Engine- and SQL-level coverage of the kParallelScan plan: the
// parallel path must return exactly the rows of the naive UDF scan,
// for direct API calls and for `USING parallel` queries, and must
// populate the MatchStats / phoneme-cache counters it advertises.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "dataset/lexicon.h"
#include "engine/database.h"
#include "sql/planner.h"
#include "text/tagged_string.h"

namespace lexequal::engine {
namespace {

using dataset::GenerateConcatenatedDataset;
using dataset::Lexicon;
using dataset::LexiconEntry;
using text::Language;
using text::TaggedString;

std::vector<std::string> RowTexts(const std::vector<Tuple>& rows,
                                  size_t col) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& row : rows) out.push_back(row[col].AsString().text());
  return out;
}

class ParallelScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_parallel_scan_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
    auto db = Database::Open(path_.string(), 2048);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();

    Result<Lexicon> lexicon = Lexicon::BuildTrilingual();
    ASSERT_TRUE(lexicon.ok());
    rows_ = GenerateConcatenatedDataset(lexicon.value(), 5000);
    ASSERT_GE(rows_.size(), 5000u);

    Schema schema({
        {"name", ValueType::kString, std::nullopt},
        {"name_phon", ValueType::kString, 0},
    });
    ASSERT_TRUE(db_->CreateTable("names", schema).ok());
    for (const LexiconEntry& e : rows_) {
      Tuple values{Value::String(e.text, e.language)};
      ASSERT_TRUE(db_->Insert("names", values).ok());
    }
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove(path_);
  }

  Result<std::vector<Tuple>> Select(LexEqualPlan plan, uint32_t threads,
                                    const TaggedString& query,
                                    QueryStats* stats = nullptr) {
    LexEqualQueryOptions options;
    options.hints.plan = plan;
    options.hints.threads = threads;
    return db_->LexEqualSelect("names", "name", query, options, stats);
  }

  std::filesystem::path path_;
  std::unique_ptr<Database> db_;
  std::vector<LexiconEntry> rows_;
};

TEST_F(ParallelScanTest, SameRowsAsNaiveAcrossThreadCounts) {
  const TaggedString query(rows_[3].text, rows_[3].language);
  Result<std::vector<Tuple>> naive =
      Select(LexEqualPlan::kNaiveUdf, 0, query);
  ASSERT_TRUE(naive.ok()) << naive.status();
  ASSERT_FALSE(naive->empty());

  for (uint32_t threads : {1u, 2u, 8u}) {
    QueryStats stats;
    Result<std::vector<Tuple>> parallel =
        Select(LexEqualPlan::kParallelScan, threads, query, &stats);
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads << ": "
                               << parallel.status();
    ASSERT_EQ(parallel->size(), naive->size()) << "threads=" << threads;
    // Same rows in the same (heap scan) order.
    for (size_t i = 0; i < naive->size(); ++i) {
      EXPECT_EQ((*parallel)[i], (*naive)[i]) << "row " << i;
    }
    EXPECT_EQ(stats.match.tuples_scanned, rows_.size());
    EXPECT_EQ(stats.match.matches, naive->size());
    EXPECT_EQ(stats.match.filter_rejections + stats.match.dp_evaluations,
              stats.match.tuples_scanned);
    // The UDF-call counter reports only DP verifications, which the
    // filters keep well under the scanned-row count.
    EXPECT_EQ(stats.udf_calls, stats.match.dp_evaluations);
    EXPECT_LT(stats.match.dp_evaluations, stats.match.tuples_scanned);
  }
}

TEST_F(ParallelScanTest, InLanguagesRestrictsLikeNaive) {
  const TaggedString query(rows_[3].text, rows_[3].language);
  LexEqualQueryOptions naive_opt;
  naive_opt.hints.plan = LexEqualPlan::kNaiveUdf;
  naive_opt.in_languages = {Language::kHindi, Language::kTamil};
  Result<std::vector<Tuple>> naive =
      db_->LexEqualSelect("names", "name", query, naive_opt);
  ASSERT_TRUE(naive.ok()) << naive.status();

  LexEqualQueryOptions par_opt = naive_opt;
  par_opt.hints.plan = LexEqualPlan::kParallelScan;
  par_opt.hints.threads = 4;
  Result<std::vector<Tuple>> parallel =
      db_->LexEqualSelect("names", "name", query, par_opt);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(RowTexts(*parallel, 0), RowTexts(*naive, 0));
  for (const Tuple& row : *parallel) {
    const Language lang = row[0].AsString().language();
    EXPECT_TRUE(lang == Language::kHindi || lang == Language::kTamil);
  }
}

TEST_F(ParallelScanTest, RepeatedProbeHitsPhonemeCache) {
  const TaggedString query(rows_[11].text, rows_[11].language);
  QueryStats cold;
  ASSERT_TRUE(
      Select(LexEqualPlan::kParallelScan, 2, query, &cold).ok());
  QueryStats warm;
  ASSERT_TRUE(
      Select(LexEqualPlan::kParallelScan, 2, query, &warm).ok());
  // Candidate-side IPA parses (and the query's G2P transform) were
  // memoized by the first run.
  EXPECT_GT(warm.match.cache_hits, 0u);
  EXPECT_GT(warm.match.cache_hits, warm.match.cache_misses);
}

TEST_F(ParallelScanTest, SqlUsingParallelMatchesUsingNaive) {
  const std::string base =
      "select name from names where name LexEQUAL '" + rows_[3].text +
      "' Threshold 0.25 USING ";
  Result<sql::QueryResult> naive =
      sql::ExecuteQuery(db_.get(), base + "naive");
  ASSERT_TRUE(naive.ok()) << naive.status();
  ASSERT_FALSE(naive->rows.empty());

  Result<sql::QueryResult> parallel =
      sql::ExecuteQuery(db_.get(), base + "parallel");
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ASSERT_EQ(parallel->rows.size(), naive->rows.size());
  for (size_t i = 0; i < naive->rows.size(); ++i) {
    EXPECT_EQ(parallel->rows[i][0].AsString().text(),
              naive->rows[i][0].AsString().text());
  }
  EXPECT_EQ(parallel->stats.match.tuples_scanned, rows_.size());
  EXPECT_GT(parallel->stats.match.filter_rejections, 0u);
}

TEST_F(ParallelScanTest, UnknownPlanHintStillRejected) {
  Result<sql::QueryResult> result = sql::ExecuteQuery(
      db_.get(),
      "select name from names where name LexEQUAL 'x' USING turbo");
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace lexequal::engine
