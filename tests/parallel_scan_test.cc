// Engine- and SQL-level coverage of the kParallelScan plan: the
// parallel path must return exactly the rows of the naive UDF scan,
// for direct API calls and for `USING parallel` queries, and must
// populate the MatchStats / phoneme-cache counters it advertises.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "dataset/lexicon.h"
#include "engine/session.h"
#include "sql/planner.h"
#include "text/tagged_string.h"

namespace lexequal::engine {
namespace {

using dataset::GenerateConcatenatedDataset;
using dataset::Lexicon;
using dataset::LexiconEntry;
using text::Language;
using text::TaggedString;

std::vector<std::string> RowTexts(const std::vector<Tuple>& rows,
                                  size_t col) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Tuple& row : rows) out.push_back(row[col].AsString().text());
  return out;
}

class ParallelScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_parallel_scan_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
    auto db = Engine::Open(path_.string(), 2048);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();

    Result<Lexicon> lexicon = Lexicon::BuildTrilingual();
    ASSERT_TRUE(lexicon.ok());
    rows_ = GenerateConcatenatedDataset(lexicon.value(), 5000);
    ASSERT_GE(rows_.size(), 5000u);

    Schema schema({
        {"name", ValueType::kString, std::nullopt},
        {"name_phon", ValueType::kString, 0},
    });
    ASSERT_TRUE(db_->CreateTable("names", schema).ok());
    for (const LexiconEntry& e : rows_) {
      Tuple values{Value::String(e.text, e.language)};
      ASSERT_TRUE(db_->Insert("names", values).ok());
    }
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove(path_);
  }

  Result<QueryResult> Select(LexEqualPlan plan, uint32_t threads,
                             const TaggedString& query) {
    LexEqualQueryOptions options;
    options.hints.plan = plan;
    options.hints.threads = threads;
    return Select(options, query);
  }

  Result<QueryResult> Select(const LexEqualQueryOptions& options,
                             const TaggedString& query) {
    Session session = db_->CreateSession();
    QueryRequest req = QueryRequest::ThresholdSelect("names", "name", query);
    req.options = options;
    return session.Execute(req);
  }

  std::filesystem::path path_;
  std::unique_ptr<Engine> db_;
  std::vector<LexiconEntry> rows_;
};

TEST_F(ParallelScanTest, SameRowsAsNaiveAcrossThreadCounts) {
  const TaggedString query(rows_[3].text, rows_[3].language);
  Result<QueryResult> naive = Select(LexEqualPlan::kNaiveUdf, 0, query);
  ASSERT_TRUE(naive.ok()) << naive.status();
  ASSERT_FALSE(naive->rows.empty());

  for (uint32_t threads : {1u, 2u, 8u}) {
    Result<QueryResult> parallel =
        Select(LexEqualPlan::kParallelScan, threads, query);
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads << ": "
                               << parallel.status();
    ASSERT_EQ(parallel->rows.size(), naive->rows.size())
        << "threads=" << threads;
    // Same rows in the same (heap scan) order.
    for (size_t i = 0; i < naive->rows.size(); ++i) {
      EXPECT_EQ(parallel->rows[i], naive->rows[i]) << "row " << i;
    }
    const QueryStats& stats = parallel->stats;
    EXPECT_EQ(stats.match.tuples_scanned, rows_.size());
    EXPECT_EQ(stats.match.matches, naive->rows.size());
    EXPECT_EQ(stats.match.filter_rejections + stats.match.dp_evaluations,
              stats.match.tuples_scanned);
    // The UDF-call counter reports only DP verifications, which the
    // filters keep well under the scanned-row count.
    EXPECT_EQ(stats.udf_calls, stats.match.dp_evaluations);
    EXPECT_LT(stats.match.dp_evaluations, stats.match.tuples_scanned);
  }
}

TEST_F(ParallelScanTest, InLanguagesRestrictsLikeNaive) {
  const TaggedString query(rows_[3].text, rows_[3].language);
  LexEqualQueryOptions naive_opt;
  naive_opt.hints.plan = LexEqualPlan::kNaiveUdf;
  naive_opt.in_languages = {Language::kHindi, Language::kTamil};
  Result<QueryResult> naive = Select(naive_opt, query);
  ASSERT_TRUE(naive.ok()) << naive.status();

  LexEqualQueryOptions par_opt = naive_opt;
  par_opt.hints.plan = LexEqualPlan::kParallelScan;
  par_opt.hints.threads = 4;
  Result<QueryResult> parallel = Select(par_opt, query);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(RowTexts(parallel->rows, 0), RowTexts(naive->rows, 0));
  for (const Tuple& row : parallel->rows) {
    const Language lang = row[0].AsString().language();
    EXPECT_TRUE(lang == Language::kHindi || lang == Language::kTamil);
  }
}

TEST_F(ParallelScanTest, RepeatedProbeHitsPhonemeCache) {
  const TaggedString query(rows_[11].text, rows_[11].language);
  Result<QueryResult> cold =
      Select(LexEqualPlan::kParallelScan, 2, query);
  ASSERT_TRUE(cold.ok());
  Result<QueryResult> warm =
      Select(LexEqualPlan::kParallelScan, 2, query);
  ASSERT_TRUE(warm.ok());
  // Candidate-side IPA parses (and the query's G2P transform) were
  // memoized by the first run.
  EXPECT_GT(warm->stats.match.cache_hits, 0u);
  EXPECT_GT(warm->stats.match.cache_hits, warm->stats.match.cache_misses);
}

TEST_F(ParallelScanTest, SqlUsingParallelMatchesUsingNaive) {
  Session session = db_->CreateSession();
  const std::string base =
      "select name from names where name LexEQUAL '" + rows_[3].text +
      "' Threshold 0.25 USING ";
  Result<sql::QueryResult> naive =
      sql::ExecuteQuery(&session, base + "naive");
  ASSERT_TRUE(naive.ok()) << naive.status();
  ASSERT_FALSE(naive->rows.empty());

  Result<sql::QueryResult> parallel =
      sql::ExecuteQuery(&session, base + "parallel");
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ASSERT_EQ(parallel->rows.size(), naive->rows.size());
  for (size_t i = 0; i < naive->rows.size(); ++i) {
    EXPECT_EQ(parallel->rows[i][0].AsString().text(),
              naive->rows[i][0].AsString().text());
  }
  EXPECT_EQ(parallel->stats.match.tuples_scanned, rows_.size());
  EXPECT_GT(parallel->stats.match.filter_rejections, 0u);
}

TEST_F(ParallelScanTest, UnknownPlanHintStillRejected) {
  Session session = db_->CreateSession();
  Result<sql::QueryResult> result = sql::ExecuteQuery(
      &session,
      "select name from names where name LexEQUAL 'x' USING turbo");
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace lexequal::engine
