// Multi-session concurrency stress, built for ThreadSanitizer (the
// `parallel` ctest label): several reader sessions hammer threshold
// selects under the shared latch while a writer thread runs the
// exclusive-latch path — Insert, ANALYZE, CREATE INDEX — against the
// same Engine. Every query must stay well-formed (no torn catalog
// reads, no stats cross-talk); tsan certifies the latch discipline.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "dataset/lexicon.h"
#include "engine/session.h"
#include "text/tagged_string.h"

namespace lexequal::engine {
namespace {

using text::TaggedString;

class SessionStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_session_stress_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
    auto db = Engine::Open(path_.string(), 2048);
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(db).value();

    Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
    ASSERT_TRUE(lexicon.ok());
    rows_ = dataset::GenerateConcatenatedDataset(lexicon.value(), 2000);
    ASSERT_GE(rows_.size(), 2000u);

    Schema schema({
        {"name", ValueType::kString, std::nullopt},
        {"name_phon", ValueType::kString, 0},
    });
    ASSERT_TRUE(db_->CreateTable("names", schema).ok());
    for (const dataset::LexiconEntry& e : rows_) {
      Tuple values{Value::String(e.text, e.language)};
      ASSERT_TRUE(db_->Insert("names", values).ok());
    }
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove(path_);
  }

  std::filesystem::path path_;
  std::unique_ptr<Engine> db_;
  std::vector<dataset::LexiconEntry> rows_;
};

TEST_F(SessionStressTest, ReadersRaceWriterWithoutTearing) {
  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 24;
  const size_t base_rows = rows_.size();

  std::atomic<int> failures{0};
  std::atomic<uint64_t> total_results{0};

  // Readers: one Session per thread (a Session is single-threaded;
  // concurrency comes from many of them). Plans are hinted to the
  // single-threaded scans so tsan exercises the engine latch, not the
  // matcher pool's internal synchronization.
  auto reader = [&](int id) {
    Session session = db_->CreateSession();
    LexEqualQueryOptions options;
    options.hints.plan = LexEqualPlan::kNaiveUdf;
    session.set_default_options(options);
    for (int i = 0; i < kQueriesPerReader; ++i) {
      const dataset::LexiconEntry& probe =
          rows_[(id * 131 + i * 17) % rows_.size()];
      QueryRequest req = QueryRequest::ThresholdSelect(
          "names", "name", TaggedString(probe.text, probe.language));
      Result<QueryResult> result = session.Execute(req);
      if (!result.ok()) {
        ++failures;
        continue;
      }
      // The probe is a table row, so it must at least match itself,
      // and a scan can never report fewer rows than the seed data.
      if (result->rows.empty() ||
          result->stats.rows_scanned < base_rows) {
        ++failures;
      }
      total_results += result->rows.size();
      if (session.LastQueryStats().results != result->stats.results) {
        ++failures;  // another session's stats bled into ours
      }
    }
  };

  // Writer: the exclusive-latch path. Grows the table, refreshes the
  // optimizer statistics, and drops an index build into the middle of
  // the run; none of it may tear a concurrent reader.
  auto writer = [&] {
    for (int i = 0; i < 16; ++i) {
      const dataset::LexiconEntry& e = rows_[i % rows_.size()];
      Tuple values{Value::String(e.text, e.language)};
      if (!db_->Insert("names", values).ok()) ++failures;
      if (i % 4 == 1 && !db_->Analyze("names").ok()) ++failures;
      if (i == 7 &&
          !db_->CreateIndex({.kind = IndexSpec::Kind::kQGram,
                             .table = "names",
                             .column = "name_phon",
                             .q = 2}).ok()) {
        ++failures;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (int id = 0; id < kReaders; ++id) threads.emplace_back(reader, id);
  threads.emplace_back(writer);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(total_results.load(), 0u);
  // The writer's side effects really landed.
  Result<TableInfo*> info = db_->GetTable("names");
  ASSERT_TRUE(info.ok());
  EXPECT_NE(info.value()->qgram_index, nullptr);
  EXPECT_TRUE(info.value()->stats.analyzed);
}

TEST_F(SessionStressTest, ConcurrentReadersAgreeOnAStaticTable) {
  // No writer: every session must compute the identical answer for the
  // identical probe, through its own private stats.
  constexpr int kReaders = 4;
  const dataset::LexiconEntry& probe = rows_[42];

  Session reference = db_->CreateSession();
  QueryRequest req = QueryRequest::ThresholdSelect(
      "names", "name", TaggedString(probe.text, probe.language));
  LexEqualQueryOptions options;
  options.hints.plan = LexEqualPlan::kNaiveUdf;
  req.options = options;
  Result<QueryResult> expected = reference.Execute(req);
  ASSERT_TRUE(expected.ok()) << expected.status();
  ASSERT_FALSE(expected->rows.empty());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (int id = 0; id < kReaders; ++id) {
    threads.emplace_back([&] {
      Session session = db_->CreateSession();
      for (int i = 0; i < 12; ++i) {
        Result<QueryResult> got = session.Execute(req);
        if (!got.ok() || got->rows.size() != expected->rows.size()) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(SessionStressTest, GetTableRacesDdlWithoutTearing) {
  // Regression for the one genuine latch hole the thread-safety
  // annotation pass surfaced: Engine::GetTable used to read the
  // catalog map with no latch at all, so a concurrent CREATE TABLE /
  // CREATE INDEX could rehash the map under the reader's feet.
  // GetTable now takes the shared latch internally; this hammers it
  // against the exclusive-latch DDL path so tsan can certify the fix.
  constexpr int kReaders = 4;
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};

  auto reader = [&] {
    while (!done.load(std::memory_order_relaxed)) {
      Result<TableInfo*> info = db_->GetTable("names");
      if (!info.ok() || info.value() == nullptr ||
          info.value()->name != "names") {
        ++failures;
      }
      // Misses must come back NotFound, never tear.
      Result<TableInfo*> miss = db_->GetTable("no_such_table");
      if (miss.ok()) ++failures;
    }
  };

  auto writer = [&] {
    Schema extra({{"word", ValueType::kString, std::nullopt},
                  {"word_phon", ValueType::kString, 0}});
    for (int i = 0; i < 8; ++i) {
      // Each CREATE TABLE inserts into the catalog map (a rehash is
      // exactly the torn read the old code risked); the index build
      // and ANALYZE mutate the TableInfo the readers hold.
      if (!db_->CreateTable("scratch_" + std::to_string(i), extra).ok()) {
        ++failures;
      }
      if (!db_->Analyze("names").ok()) ++failures;
    }
    done.store(true, std::memory_order_relaxed);
  };

  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (int id = 0; id < kReaders; ++id) threads.emplace_back(reader);
  threads.emplace_back(writer);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  Result<TableInfo*> info = db_->GetTable("scratch_7");
  EXPECT_TRUE(info.ok());
}

}  // namespace
}  // namespace lexequal::engine
