#include <gtest/gtest.h>

#include "g2p/cyrillic_g2p.h"
#include "g2p/hangul_g2p.h"
#include "match/lexequal.h"
#include "text/utf8.h"

namespace lexequal::g2p {
namespace {

using text::EncodeUtf8;

class CyrillicG2PTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cyr_ = CyrillicG2P::Create().value().release();
  }
  static std::string Ipa(const std::vector<uint32_t>& cps) {
    Result<phonetic::PhonemeString> ps = cyr_->ToPhonemes(EncodeUtf8(cps));
    EXPECT_TRUE(ps.ok()) << ps.status();
    return ps.ok() ? ps.value().ToIpa() : "<error>";
  }
  static CyrillicG2P* cyr_;
};

CyrillicG2P* CyrillicG2PTest::cyr_ = nullptr;

TEST_F(CyrillicG2PTest, BasicNames) {
  // Иван -> ivan.
  EXPECT_EQ(Ipa({0x0418, 0x0432, 0x0430, 0x043D}), "ivan");
  // Борис -> boris.
  EXPECT_EQ(Ipa({0x0411, 0x043E, 0x0440, 0x0438, 0x0441}), "boris");
}

TEST_F(CyrillicG2PTest, IotatedVowels) {
  // Word-initial я -> ja: Яна = jana.
  EXPECT_EQ(Ipa({0x042F, 0x043D, 0x0430}), "jana");
  // After a consonant no glide: Нева = neva.
  EXPECT_EQ(Ipa({0x041D, 0x0435, 0x0432, 0x0430}), "neva");
  // After a vowel the glide returns: Мария = marija.
  EXPECT_EQ(Ipa({0x041C, 0x0430, 0x0440, 0x0438, 0x044F}), "marija");
}

TEST_F(CyrillicG2PTest, SignsAreSilent) {
  // Гоголь -> gogol (ь silent).
  EXPECT_EQ(Ipa({0x0413, 0x043E, 0x0433, 0x043E, 0x043B, 0x044C}),
            "ɡoɡol");
}

TEST_F(CyrillicG2PTest, CompoundLetters) {
  // ц -> ts, щ -> ʃtʃ, ж -> ʒ, х -> x.
  EXPECT_EQ(Ipa({0x0426, 0x0430, 0x0440}), "tsar");
  EXPECT_EQ(Ipa({0x0416, 0x0443, 0x043A}), "ʒuk");
}

TEST_F(CyrillicG2PTest, CrossScriptMatch) {
  // Иван ~ "Ivan" across scripts.
  match::LexEqualMatcher matcher(
      {.threshold = 0.25, .intra_cluster_cost = 0.25});
  text::TaggedString latin("Ivan", text::Language::kEnglish);
  text::TaggedString cyrillic(EncodeUtf8({0x0418, 0x0432, 0x0430, 0x043D}),
                              text::Language::kRussian);
  EXPECT_EQ(matcher.Match(latin, cyrillic), match::MatchOutcome::kTrue);
}

TEST_F(CyrillicG2PTest, RejectsForeignText) {
  EXPECT_FALSE(cyr_->ToPhonemes("abc").ok());
}

class HangulG2PTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kor_ = HangulG2P::Create().value().release();
  }
  static std::string Ipa(const std::vector<uint32_t>& cps) {
    Result<phonetic::PhonemeString> ps = kor_->ToPhonemes(EncodeUtf8(cps));
    EXPECT_TRUE(ps.ok()) << ps.status();
    return ps.ok() ? ps.value().ToIpa() : "<error>";
  }
  static HangulG2P* kor_;
};

HangulG2P* HangulG2PTest::kor_ = nullptr;

TEST_F(HangulG2PTest, SyllableDecomposition) {
  // 김 (gim): ㄱ + ㅣ + ㅁ.
  EXPECT_EQ(Ipa({0xAE40}), "ɡim");
  // 박 (bak): ㅂ + ㅏ + ㄱ-final.
  EXPECT_EQ(Ipa({0xBC15}), "bak");
  // 서울 (seoul): ㅅㅓ + ㅇㅜㄹ.
  EXPECT_EQ(Ipa({0xC11C, 0xC6B8}), "sʌul");
}

TEST_F(HangulG2PTest, SilentInitialAndNgFinal) {
  // 아 = bare vowel a; 강 (gang) has the ŋ final.
  EXPECT_EQ(Ipa({0xC544}), "a");
  EXPECT_EQ(Ipa({0xAC15}), "ɡaŋ");
}

TEST_F(HangulG2PTest, AspiratedSeries) {
  // 타 = tʰa, 파 = pʰa, 차 = tʃʰa.
  EXPECT_EQ(Ipa({0xD0C0}), "tʰa");
  EXPECT_EQ(Ipa({0xD30C}), "pʰa");
  EXPECT_EQ(Ipa({0xCC28}), "tʃʰa");
}

TEST_F(HangulG2PTest, DiphthongMedials) {
  // 원 (won): w + ʌ + n.
  EXPECT_EQ(Ipa({0xC6D0}), "wʌn");
  // 여 (yeo): j + ʌ.
  EXPECT_EQ(Ipa({0xC5EC}), "jʌ");
}

TEST_F(HangulG2PTest, CrossScriptMatch) {
  // 김 ~ "Kim": lenis g vs k is intra-cluster.
  match::LexEqualMatcher matcher(
      {.threshold = 0.25, .intra_cluster_cost = 0.25});
  text::TaggedString latin("Kim", text::Language::kEnglish);
  text::TaggedString hangul(EncodeUtf8({0xAE40}),
                            text::Language::kKorean);
  EXPECT_EQ(matcher.Match(latin, hangul), match::MatchOutcome::kTrue);
}

TEST_F(HangulG2PTest, RejectsNonSyllables) {
  EXPECT_FALSE(kor_->ToPhonemes("abc").ok());
}

}  // namespace
}  // namespace lexequal::g2p
