#include "match/lexequal.h"

#include <gtest/gtest.h>

#include "g2p/render_indic.h"
#include "text/utf8.h"

namespace lexequal::match {
namespace {

using text::Language;
using text::TaggedString;

TaggedString Hindi(const std::vector<uint32_t>& cps) {
  return TaggedString(text::EncodeUtf8(cps), Language::kHindi);
}

TaggedString Tamil(const std::vector<uint32_t>& cps) {
  return TaggedString(text::EncodeUtf8(cps), Language::kTamil);
}

TaggedString English(std::string s) {
  return TaggedString(std::move(s), Language::kEnglish);
}

// The paper's running example: Nehru in English, Hindi (नेहरु),
// Tamil (நேரு), Greek (Νερου).
const std::vector<uint32_t> kNehruHindi = {0x0928, 0x0947, 0x0939, 0x0930,
                                           0x0941};
const std::vector<uint32_t> kNehruTamil = {0x0BA8, 0x0BC7, 0x0BB0, 0x0BC1};
const std::vector<uint32_t> kNehruGreek = {0x039D, 0x03B5, 0x03C1, 0x03BF,
                                           0x03C5};

TEST(LexEqualMatcherTest, NehruMatchesAcrossFourScripts) {
  // Parameters from the paper's recommended knee region (Fig. 12):
  // threshold 0.25-0.35, intra-cluster cost 0.25-0.5.
  LexEqualMatcher matcher({.threshold = 0.3, .intra_cluster_cost = 0.25});
  TaggedString english = English("Nehru");
  EXPECT_EQ(matcher.Match(english, Hindi(kNehruHindi)),
            MatchOutcome::kTrue);
  EXPECT_EQ(matcher.Match(english, Tamil(kNehruTamil)),
            MatchOutcome::kTrue);
  EXPECT_EQ(matcher.Match(
                english,
                TaggedString(text::EncodeUtf8(kNehruGreek),
                             Language::kGreek)),
            MatchOutcome::kTrue);
}

TEST(LexEqualMatcherTest, MatchingIsSymmetric) {
  LexEqualMatcher matcher;
  TaggedString english = English("Nehru");
  TaggedString hindi = Hindi(kNehruHindi);
  EXPECT_EQ(matcher.Match(english, hindi), matcher.Match(hindi, english));
}

TEST(LexEqualMatcherTest, DifferentNamesDoNotMatch) {
  LexEqualMatcher matcher({.threshold = 0.25, .intra_cluster_cost = 0.5});
  EXPECT_EQ(matcher.Match(English("Nehru"), English("Gandhi")),
            MatchOutcome::kFalse);
  EXPECT_EQ(matcher.Match(English("Smith"), Hindi(kNehruHindi)),
            MatchOutcome::kFalse);
}

TEST(LexEqualMatcherTest, NeroIsABorderlineFalsePositive) {
  // The paper notes Nero *could* appear in Nehru's result set
  // depending on the threshold: phonemically nɛro vs nɛ(h)ru.
  TaggedString nehru = English("Nehru");
  TaggedString nero = English("Nero");
  LexEqualMatcher strict({.threshold = 0.0, .intra_cluster_cost = 0.5});
  EXPECT_EQ(strict.Match(nehru, nero), MatchOutcome::kFalse);
  LexEqualMatcher lax({.threshold = 0.6, .intra_cluster_cost = 0.25});
  EXPECT_EQ(lax.Match(nehru, nero), MatchOutcome::kTrue);
}

TEST(LexEqualMatcherTest, ThresholdZeroAcceptsPerfectPhonemicMatches) {
  // Identical vocalization, different spelling.
  LexEqualMatcher strict({.threshold = 0.0, .intra_cluster_cost = 1.0});
  EXPECT_EQ(strict.Match(English("Smith"), English("Smith")),
            MatchOutcome::kTrue);
}

TEST(LexEqualMatcherTest, NoResourceForUnsupportedLanguage) {
  LexEqualMatcher matcher;
  TaggedString japanese("\xE5\xAF\xBA\xE4\xBA\x95",
                        Language::kJapanese);  // 寺井
  EXPECT_EQ(matcher.Match(English("Nehru"), japanese),
            MatchOutcome::kNoResource);
  EXPECT_EQ(matcher.Match(japanese, English("Nehru")),
            MatchOutcome::kNoResource);
}

TEST(LexEqualMatcherTest, HigherThresholdAdmitsMore) {
  // Monotonicity in the threshold parameter.
  TaggedString a = English("Catherine");
  TaggedString b = English("Kathryn");
  bool matched_at_lower = false;
  for (double t : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    LexEqualMatcher m({.threshold = t, .intra_cluster_cost = 0.5});
    bool now = m.Match(a, b) == MatchOutcome::kTrue;
    EXPECT_TRUE(now || !matched_at_lower)
        << "match lost when raising threshold to " << t;
    matched_at_lower = matched_at_lower || now;
  }
  EXPECT_TRUE(matched_at_lower);  // they match at some threshold
}

TEST(LexEqualMatcherTest, LowerIntraClusterCostAdmitsMore) {
  // nɛru-style variants: lowering the cluster cost can only help.
  TaggedString eng = English("Nehru");
  TaggedString tam = Tamil(kNehruTamil);
  for (double t : {0.1, 0.25}) {
    bool matched_at_higher_cost = false;
    for (double c : {1.0, 0.5, 0.0}) {
      LexEqualMatcher m({.threshold = t, .intra_cluster_cost = c});
      bool now = m.Match(eng, tam) == MatchOutcome::kTrue;
      EXPECT_TRUE(now || !matched_at_higher_cost);
      matched_at_higher_cost = matched_at_higher_cost || now;
    }
  }
}

TEST(LexEqualMatcherTest, MatchPhonemesUsesMinLengthAllowance) {
  LexEqualMatcher m({.threshold = 0.5, .intra_cluster_cost = 1.0});
  // |a| = 2, |b| = 3: allowance = 1.
  phonetic::PhonemeString a({phonetic::Phoneme::kN, phonetic::Phoneme::kE});
  phonetic::PhonemeString b({phonetic::Phoneme::kN, phonetic::Phoneme::kE,
                             phonetic::Phoneme::kR});
  EXPECT_TRUE(m.MatchPhonemes(a, b));
  EXPECT_DOUBLE_EQ(m.Allowance(a.size(), b.size()), 1.0);
}

TEST(LexEqualMatcherTest, CrossScriptEquiJoinPairs) {
  // Figure 5 semantics: same author, different languages.
  LexEqualMatcher matcher({.threshold = 0.3, .intra_cluster_cost = 0.25});
  struct Pair {
    TaggedString a;
    TaggedString b;
  };
  const Pair pairs[] = {
      {English("Nehru"), Hindi(kNehruHindi)},
      {English("Nehru"), Tamil(kNehruTamil)},
      {Hindi(kNehruHindi), Tamil(kNehruTamil)},
  };
  for (const Pair& p : pairs) {
    EXPECT_EQ(matcher.Match(p.a, p.b), MatchOutcome::kTrue)
        << p.a.text() << " vs " << p.b.text();
  }
}

}  // namespace
}  // namespace lexequal::match
