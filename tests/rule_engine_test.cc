#include "g2p/rule_engine.h"

#include <gtest/gtest.h>

namespace lexequal::g2p {
namespace {

// A tiny table exercising every metacharacter.
RuleEngine MakeEngine(std::vector<RewriteRule> rules) {
  Result<RuleEngine> engine = RuleEngine::Create(rules);
  EXPECT_TRUE(engine.ok()) << engine.status();
  return std::move(engine).value();
}

std::string Apply(const RuleEngine& engine, std::string_view word) {
  Result<phonetic::PhonemeString> ps = engine.Apply(word);
  EXPECT_TRUE(ps.ok()) << word << ": " << ps.status();
  return ps.ok() ? ps.value().ToIpa() : "<error>";
}

TEST(RuleEngineTest, FirstMatchingRuleWins) {
  RuleEngine e = MakeEngine({
      {"", "ab", "", "p"},
      {"", "a", "", "a"},
      {"", "b", "", "b"},
  });
  EXPECT_EQ(Apply(e, "ab"), "p");    // digraph rule first
  EXPECT_EQ(Apply(e, "ba"), "ba");   // falls through to singles
}

TEST(RuleEngineTest, WordBoundaryContexts) {
  RuleEngine e = MakeEngine({
      {" ", "a", "", "i"},   // word-initial a
      {"", "a", " ", "u"},   // word-final a
      {"", "a", "", "a"},
      {"", "b", "", "b"},
  });
  EXPECT_EQ(Apply(e, "aba"), "ibu");
  EXPECT_EQ(Apply(e, "bab"), "bab");
}

TEST(RuleEngineTest, VowelAndConsonantClasses) {
  RuleEngine e = MakeEngine({
      {"#", "b", "", "p"},    // b after one or more vowels
      {"", "b", "^", "m"},    // b before a consonant
      {"", "b", "", "b"},
      {"", "a", "", "a"},
      {"", "e", "", "e"},
      {"", "t", "", "t"},
  });
  EXPECT_EQ(Apply(e, "aeb"), "aep");  // '#' consumed both vowels
  EXPECT_EQ(Apply(e, "bta"), "mta");  // '^' matched t
  EXPECT_EQ(Apply(e, "b"), "b");
}

TEST(RuleEngineTest, ZeroOrMoreConsonants) {
  RuleEngine e = MakeEngine({
      {"#:", "o", " ", "u"},  // final o after vowel + any consonants
      {"", "o", "", "o"},
      {"", "a", "", "a"},
      {"", "t", "", "t"},
      {"", "r", "", "r"},
  });
  EXPECT_EQ(Apply(e, "atro"), "atru");  // ':' ate "tr"
  EXPECT_EQ(Apply(e, "o"), "o");        // no vowel before: no match
}

TEST(RuleEngineTest, VoicedAndFrontClasses) {
  RuleEngine e = MakeEngine({
      {".", "s", "", "z"},   // s after a voiced consonant
      {"", "s", "+", "ʃ"},   // s before a front vowel
      {"", "s", "", "s"},
      {"", "n", "", "n"},
      {"", "i", "", "i"},
      {"", "a", "", "a"},
      {"", "t", "", "t"},
  });
  EXPECT_EQ(Apply(e, "ns"), "nz");
  EXPECT_EQ(Apply(e, "si"), "ʃi");
  EXPECT_EQ(Apply(e, "tsa"), "tsa");
}

TEST(RuleEngineTest, SuffixClass) {
  RuleEngine e = MakeEngine({
      {"", "o", "^%", "u"},  // o + consonant + e/es/ed/er/ing/ely
      {"", "o", "", "o"},
      {"", "n", "", "n"},
      {"", "e", "", "e"},
      {"", "s", "", "s"},
      {"", "d", "", "d"},
  });
  EXPECT_EQ(Apply(e, "nones"), "nunes");  // "es" suffix matched
  EXPECT_EQ(Apply(e, "non"), "non");
}

TEST(RuleEngineTest, SilentRules) {
  RuleEngine e = MakeEngine({
      {"", "k", "n", ""},  // silent k before n
      {"", "k", "", "k"},
      {"", "n", "", "n"},
      {"", "i", "", "i"},
  });
  EXPECT_EQ(Apply(e, "kni"), "ni");
  EXPECT_EQ(Apply(e, "kin"), "kin");
}

TEST(RuleEngineTest, NonLettersAreStripped) {
  RuleEngine e = MakeEngine({
      {" ", "a", "", "i"},  // word-initial
      {"", "a", "", "a"},
      {"", "b", "", "b"},
  });
  // Hyphens/digits are removed before matching, so contexts see a
  // contiguous word.
  EXPECT_EQ(Apply(e, "a-b4a"), Apply(e, "aba"));
}

TEST(RuleEngineTest, IncompleteTableErrors) {
  RuleEngine e = MakeEngine({{"", "a", "", "a"}});
  Result<phonetic::PhonemeString> r = e.Apply("ab");
  EXPECT_TRUE(r.status().IsInvalidArgument());  // no rule for b
}

TEST(RuleEngineTest, CreateValidation) {
  EXPECT_FALSE(RuleEngine::Create({{"", "", "", "a"}}).ok());
  EXPECT_FALSE(RuleEngine::Create({{"", "a", "", "NOPE!"}}).ok());
  EXPECT_FALSE(RuleEngine::Create({{"", "9x", "", "a"}}).ok());
  EXPECT_TRUE(RuleEngine::Create({{"", "a", "", ""}}).ok());  // silent ok
}

TEST(RuleEngineTest, RuleCount) {
  RuleEngine e = MakeEngine({{"", "a", "", "a"}, {"", "b", "", "b"}});
  EXPECT_EQ(e.rule_count(), 2u);
}

}  // namespace
}  // namespace lexequal::g2p
