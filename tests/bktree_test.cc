#include "index/bktree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "dataset/lexicon.h"
#include "match/edit_distance.h"

namespace lexequal::index {
namespace {

using match::ClusteredCost;
using match::EditDistance;
using phonetic::ClusterTable;
using phonetic::kPhonemeCount;
using phonetic::Phoneme;
using phonetic::PhonemeString;

PhonemeString RandomString(Random* rng, size_t max_len) {
  size_t len = 1 + rng->Uniform(max_len);
  std::vector<Phoneme> ph;
  for (size_t i = 0; i < len; ++i) {
    ph.push_back(static_cast<Phoneme>(rng->Uniform(kPhonemeCount)));
  }
  return PhonemeString(std::move(ph));
}

TEST(BkTreeTest, EmptyTree) {
  ClusteredCost cost(ClusterTable::Default(), 0.25);
  BkTree tree(&cost);
  EXPECT_EQ(tree.size(), 0u);
  PhonemeString q({Phoneme::kN});
  EXPECT_TRUE(tree.Search(q, 5.0).empty());
}

TEST(BkTreeTest, ExactAndNearLookups) {
  ClusteredCost cost(ClusterTable::Default(), 0.25);
  BkTree tree(&cost);
  PhonemeString neru({Phoneme::kN, Phoneme::kE, Phoneme::kR, Phoneme::kU});
  PhonemeString nehru({Phoneme::kN, Phoneme::kE, Phoneme::kH,
                       Phoneme::kR, Phoneme::kU});
  PhonemeString smith({Phoneme::kS, Phoneme::kM, Phoneme::kIh,
                       Phoneme::kThF});
  tree.Insert(neru, 1);
  tree.Insert(nehru, 2);
  tree.Insert(smith, 3);

  std::vector<uint64_t> exact = tree.Search(neru, 0.0);
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(exact[0], 1u);

  // h insertion costs 0.5 under the weak discount.
  std::vector<uint64_t> near = tree.Search(neru, 0.5);
  std::sort(near.begin(), near.end());
  EXPECT_EQ(near, (std::vector<uint64_t>{1, 2}));

  EXPECT_TRUE(tree.Search(smith, 0.0).size() == 1);
}

// The core property: Search(q, r) returns exactly the elements a
// linear scan would.
TEST(BkTreeTest, AgreesWithLinearScanProperty) {
  Random rng(77);
  ClusteredCost cost(ClusterTable::Default(), 0.25);
  BkTree tree(&cost);
  std::vector<PhonemeString> all;
  for (uint64_t i = 0; i < 400; ++i) {
    PhonemeString s = RandomString(&rng, 10);
    tree.Insert(s, i);
    all.push_back(std::move(s));
  }
  for (int trial = 0; trial < 50; ++trial) {
    PhonemeString q = RandomString(&rng, 10);
    const double radius = rng.NextDouble() * 3.0;
    std::set<uint64_t> expected;
    for (uint64_t i = 0; i < all.size(); ++i) {
      if (EditDistance(q, all[i], cost) <= radius) expected.insert(i);
    }
    std::vector<uint64_t> got = tree.Search(q, radius);
    std::set<uint64_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set, expected) << "radius " << radius;
  }
}

TEST(BkTreeTest, SearchPrunesDistanceComputations) {
  // On real lexicon data, a small-radius search must compute far
  // fewer distances than the element count.
  ClusteredCost cost(ClusterTable::Default(), 0.25);
  BkTree tree(&cost);
  Result<dataset::Lexicon> lex = dataset::Lexicon::BuildTrilingual();
  ASSERT_TRUE(lex.ok());
  uint64_t id = 0;
  for (const dataset::LexiconEntry& e : lex->entries()) {
    tree.Insert(e.phonemes, id++);
  }
  ASSERT_EQ(tree.size(), lex->entries().size());
  const PhonemeString& probe = lex->entries()[42].phonemes;
  std::vector<uint64_t> hits = tree.Search(probe, 1.0);
  EXPECT_GE(hits.size(), 1u);  // finds at least itself
  EXPECT_LT(tree.last_search_distance_count(),
            lex->entries().size() / 2)
      << "BK-tree pruned less than half the tree";
}

TEST(BkTreeTest, DuplicateElementsAllReturned) {
  ClusteredCost cost(ClusterTable::Default(), 0.5);
  BkTree tree(&cost);
  PhonemeString s({Phoneme::kM, Phoneme::kA});
  tree.Insert(s, 7);
  tree.Insert(s, 8);
  tree.Insert(s, 9);
  std::vector<uint64_t> got = tree.Search(s, 0.0);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<uint64_t>{7, 8, 9}));
}

}  // namespace
}  // namespace lexequal::index
