// SQL surface of the optimizer: ANALYZE / CREATE INDEX statements and
// the EXPLAIN [ANALYZE] table rendering (structure, chosen marker,
// source column, estimated-vs-actual columns).

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "engine/session.h"
#include "sql/planner.h"
#include "text/utf8.h"

namespace lexequal::sql {
namespace {

using engine::Engine;
using engine::Schema;
using engine::Session;
using engine::Tuple;
using engine::Value;
using engine::ValueType;
using text::Language;

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_explain_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
    auto db = Engine::Open(path_.string(), 256);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    session_.emplace(db_->CreateSession());
    PopulateBooks();
  }
  void TearDown() override {
    session_.reset();
    db_.reset();
    std::filesystem::remove(path_);
  }

  void PopulateBooks() {
    Schema schema({
        {"author", ValueType::kString, std::nullopt},
        {"author_phon", ValueType::kString, 0},
        {"title", ValueType::kString, std::nullopt},
    });
    ASSERT_TRUE(db_->CreateTable("books", schema).ok());
    auto add = [&](const std::string& author, Language lang,
                   const char* title) {
      Tuple values{Value::String(author, lang),
                   Value::String(title, Language::kEnglish)};
      ASSERT_TRUE(db_->Insert("books", values).ok());
    };
    add("Nehru", Language::kEnglish, "Discovery of India");
    add(text::EncodeUtf8({0x0928, 0x0947, 0x0939, 0x0930, 0x0941}),
        Language::kHindi, "Bharat Ek Khoj");
    add("Smith", Language::kEnglish, "A Book");
    add("Sarri", Language::kEnglish, "Another Book");
  }

  QueryResult Run(const std::string& sql) {
    Result<QueryResult> result = ExecuteQuery(&*session_, sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    return result.ok() ? std::move(result).value() : QueryResult{};
  }

  // Ordinal of `name` in the result's header, or fails the test.
  static size_t Col(const QueryResult& result, const std::string& name) {
    for (size_t i = 0; i < result.column_names.size(); ++i) {
      if (result.column_names[i] == name) return i;
    }
    ADD_FAILURE() << "no column '" << name << "'";
    return 0;
  }

  static std::string Cell(const QueryResult& result, size_t row,
                          const std::string& column) {
    return result.rows[row][Col(result, column)].AsString().text();
  }

  // The row whose `chosen` cell is "*" (exactly one must exist).
  static size_t ChosenRow(const QueryResult& result) {
    size_t found = result.rows.size();
    size_t count = 0;
    for (size_t i = 0; i < result.rows.size(); ++i) {
      if (Cell(result, i, "chosen") == "*") {
        found = i;
        ++count;
      }
    }
    EXPECT_EQ(count, 1u) << "expected exactly one chosen plan";
    return found;
  }

  std::filesystem::path path_;
  std::unique_ptr<Engine> db_;
  std::optional<Session> session_;
};

TEST_F(ExplainTest, AnalyzeStatementReportsRowCounts) {
  const QueryResult result = Run("analyze books");
  EXPECT_EQ(result.column_names,
            (std::vector<std::string>{"table", "rows"}));
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsString().text(), "books");
  EXPECT_EQ(result.rows[0][1].AsInt64(), 4);
  EXPECT_TRUE(db_->GetTable("books").value()->stats.analyzed);
}

TEST_F(ExplainTest, CreateIndexStatementsBuildBothKinds) {
  Run("create index qgram on books (author_phon) Q 2");
  Run("create index phonetic on books (author_phon)");
  engine::TableInfo* info = db_->GetTable("books").value();
  ASSERT_NE(info->qgram_index, nullptr);
  EXPECT_EQ(info->qgram_index->q, 2);
  EXPECT_NE(info->phonetic_index, nullptr);

  Result<QueryResult> bad = ExecuteQuery(
      &*session_, "create index btree on books (author_phon)");
  EXPECT_FALSE(bad.ok());
}

TEST_F(ExplainTest, ExplainUnanalyzedFallsBackToHeuristicRow) {
  const QueryResult result = Run(
      "explain select author from books where author LexEQUAL 'Nehru' "
      "Threshold 0.25");
  EXPECT_EQ(result.column_names,
            (std::vector<std::string>{"plan", "chosen", "source",
                                      "est_cost", "est_rows", "note"}));
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(Cell(result, 0, "chosen"), "*");
  EXPECT_EQ(Cell(result, 0, "source"), "heuristic");
  EXPECT_EQ(Cell(result, 0, "est_cost"), "");  // no statistics yet
  EXPECT_NE(Cell(result, 0, "note").find("unanalyzed"),
            std::string::npos);
}

TEST_F(ExplainTest, ExplainAnalyzedPricesEveryConcretePlan) {
  Run("create index qgram on books (author_phon)");
  Run("create index phonetic on books (author_phon)");
  Run("create index invidx on books (author_phon)");
  Run("analyze");
  const QueryResult result = Run(
      "explain select author from books where author LexEQUAL 'Nehru' "
      "Threshold 0.25");
  ASSERT_EQ(result.rows.size(), 5u);  // one per concrete plan
  EXPECT_EQ(Cell(result, 0, "plan"), "naive-udf");
  EXPECT_EQ(Cell(result, 1, "plan"), "qgram-filter");
  EXPECT_EQ(Cell(result, 2, "plan"), "phonetic-index");
  EXPECT_EQ(Cell(result, 3, "plan"), "parallel-scan");
  EXPECT_EQ(Cell(result, 4, "plan"), "inverted-index");
  const size_t chosen = ChosenRow(result);
  EXPECT_EQ(Cell(result, chosen, "source"), "statistics");
  for (size_t i = 0; i < result.rows.size(); ++i) {
    EXPECT_FALSE(Cell(result, i, "est_cost").empty())
        << "plan " << Cell(result, i, "plan");
  }
}

TEST_F(ExplainTest, ExplainHonorsUsingHint) {
  Run("create index qgram on books (author_phon)");
  Run("analyze books");
  const QueryResult result = Run(
      "explain select author from books where author LexEQUAL 'Nehru' "
      "Threshold 0.25 USING qgram");
  const size_t chosen = ChosenRow(result);
  EXPECT_EQ(Cell(result, chosen, "plan"), "qgram-filter");
  EXPECT_EQ(Cell(result, chosen, "source"), "hint");
  // Ineligible plans say why instead of pricing.
  for (size_t i = 0; i < result.rows.size(); ++i) {
    if (Cell(result, i, "plan") == "phonetic-index") {
      EXPECT_NE(Cell(result, i, "note").find("no phonetic index"),
                std::string::npos);
    }
  }
}

TEST_F(ExplainTest, ExplainAnalyzeAddsActualColumns) {
  Run("analyze books");
  const std::string select =
      "select author from books where author LexEQUAL 'Nehru' "
      "Threshold 0.25";
  const QueryResult direct = Run(select);
  const QueryResult result = Run("explain analyze " + select);
  EXPECT_EQ(result.column_names,
            (std::vector<std::string>{"plan", "chosen", "source",
                                      "est_cost", "est_rows", "act_rows",
                                      "act_results", "note"}));
  const size_t chosen = ChosenRow(result);
  EXPECT_EQ(Cell(result, chosen, "act_results"),
            std::to_string(direct.rows.size()));
  EXPECT_FALSE(Cell(result, chosen, "act_rows").empty());
  // Non-chosen rows did not run, so their actual cells stay blank.
  for (size_t i = 0; i < result.rows.size(); ++i) {
    if (i == chosen) continue;
    EXPECT_EQ(Cell(result, i, "act_results"), "");
  }
}

// --- EXPLAIN ANALYZE stage table (QueryTrace-backed) ---------------

// Trimmed stage names from the trace table, in execution order.
std::vector<std::string> StageNames(const QueryResult& result) {
  size_t col = 0;
  for (size_t i = 0; i < result.trace_column_names.size(); ++i) {
    if (result.trace_column_names[i] == "stage") col = i;
  }
  std::vector<std::string> out;
  for (const Tuple& row : result.trace_rows) {
    std::string name = row[col].AsString().text();
    out.push_back(name.substr(name.find_first_not_of(' ')));
  }
  return out;
}

bool Contains(const std::vector<std::string>& names,
              const std::string& want) {
  for (const std::string& n : names) {
    if (n == want) return true;
  }
  return false;
}

TEST_F(ExplainTest, ExplainAnalyzeEmitsStageTableForNaivePlan) {
  Run("analyze books");
  const QueryResult result = Run(
      "explain analyze select author from books where author LexEQUAL "
      "'Nehru' Threshold 0.25 USING naive");
  ASSERT_FALSE(result.trace_rows.empty());
  EXPECT_EQ(result.trace_column_names,
            (std::vector<std::string>{
                "stage", "wall_us", "rows", "bp_hits", "bp_misses",
                "disk_reads", "cache_hits", "cache_misses",
                "cache_hit_pct"}));
  const std::vector<std::string> stages = StageNames(result);
  EXPECT_EQ(stages.front(), "lexequal_select");  // root comes first
  EXPECT_TRUE(Contains(stages, "plan_pick"));
  EXPECT_TRUE(Contains(stages, "seq_scan_udf"));
  EXPECT_FALSE(result.TraceTable().empty());
  // Plain EXPLAIN (no ANALYZE) never produces a stage table.
  const QueryResult plain = Run(
      "explain select author from books where author LexEQUAL 'Nehru' "
      "Threshold 0.25 USING naive");
  EXPECT_TRUE(plain.trace_rows.empty());
  EXPECT_TRUE(plain.TraceTable().empty());
}

// --- EXPLAIN for ORDER BY lexsim(...) LIMIT k ----------------------

TEST_F(ExplainTest, ExplainTopKShowsBothPlans) {
  const QueryResult without = Run(
      "explain select author from books "
      "order by lexsim(author, 'Nehru') limit 2");
  EXPECT_EQ(without.column_names,
            (std::vector<std::string>{"plan", "chosen", "note"}));
  ASSERT_EQ(without.rows.size(), 2u);
  EXPECT_EQ(Cell(without, 0, "plan"), "inverted-index");
  EXPECT_EQ(Cell(without, 1, "plan"), "naive-udf");
  EXPECT_EQ(Cell(without, ChosenRow(without), "plan"), "naive-udf");

  Run("create index invidx on books (author_phon)");
  const QueryResult with = Run(
      "explain select author from books "
      "order by lexsim(author, 'Nehru') limit 2");
  EXPECT_EQ(Cell(with, ChosenRow(with), "plan"), "inverted-index");
  // A hint away from the index puts brute force back in charge.
  const QueryResult hinted = Run(
      "explain select author from books "
      "order by lexsim(author, 'Nehru') USING naive limit 2");
  EXPECT_EQ(Cell(hinted, ChosenRow(hinted), "plan"), "naive-udf");
}

TEST_F(ExplainTest, ExplainAnalyzeTopKTracesInvidxStages) {
  Run("create index invidx on books (author_phon)");
  const QueryResult result = Run(
      "explain analyze select author from books "
      "order by lexsim(author, 'Nehru') limit 2");
  const size_t chosen = ChosenRow(result);
  EXPECT_EQ(Cell(result, chosen, "plan"), "inverted-index");
  // The chosen row's note carries the actual posting / skip /
  // early-termination counters.
  EXPECT_NE(Cell(result, chosen, "note").find("postings="),
            std::string::npos);
  EXPECT_NE(Cell(result, chosen, "note").find("early_terminated="),
            std::string::npos);
  ASSERT_FALSE(result.trace_rows.empty());
  const std::vector<std::string> stages = StageNames(result);
  EXPECT_EQ(stages.front(), "lexequal_topk");
  EXPECT_TRUE(Contains(stages, "invidx_open_lists"));
  // The four-row table certifies exactness by brute force or by the
  // score bound; either stage row is acceptable, but one must exist.
  EXPECT_TRUE(Contains(stages, "invidx_merge") ||
              Contains(stages, "topk_brute_force"));
}

TEST_F(ExplainTest, ExplainAnalyzeTracesQGramStages) {
  Run("create index qgram on books (author_phon)");
  Run("analyze books");
  const QueryResult result = Run(
      "explain analyze select author from books where author LexEQUAL "
      "'Nehru' Threshold 0.25 USING qgram");
  const std::vector<std::string> stages = StageNames(result);
  EXPECT_TRUE(Contains(stages, "qgram_filter"));
  EXPECT_TRUE(Contains(stages, "verify"));
}

TEST_F(ExplainTest, ExplainAnalyzeTracesPhoneticStages) {
  Run("create index phonetic on books (author_phon)");
  Run("analyze books");
  const QueryResult result = Run(
      "explain analyze select author from books where author LexEQUAL "
      "'Nehru' Threshold 0.25 USING phonetic");
  const std::vector<std::string> stages = StageNames(result);
  EXPECT_TRUE(Contains(stages, "phonetic_probe"));
  EXPECT_TRUE(Contains(stages, "verify"));
}

TEST_F(ExplainTest, ExplainAnalyzeTracesParallelStages) {
  Run("analyze books");
  const QueryResult result = Run(
      "explain analyze select author from books where author LexEQUAL "
      "'Nehru' Threshold 0.25 USING parallel");
  const std::vector<std::string> stages = StageNames(result);
  EXPECT_TRUE(Contains(stages, "materialize"));
  EXPECT_TRUE(Contains(stages, "parallel_match"));
}

TEST_F(ExplainTest, ExplainAnalyzeRestoresTracingState) {
  ASSERT_FALSE(session_->tracing());
  Run("explain analyze select author from books where author LexEQUAL "
      "'Nehru' Threshold 0.25");
  EXPECT_FALSE(session_->tracing());  // forced on for the run, restored

  session_->set_tracing(true);
  Run("explain analyze select author from books where author LexEQUAL "
      "'Nehru' Threshold 0.25");
  EXPECT_TRUE(session_->tracing());
  session_->set_tracing(false);
}

// The stats-drift satellite: every plan routes its candidates through
// the same counters, so udf_calls and match.dp_evaluations agree and
// every scanned candidate is either filtered or DP-evaluated.
TEST_F(ExplainTest, AllPlansKeepUdfAndDpCountersInParity) {
  Run("create index qgram on books (author_phon)");
  Run("create index phonetic on books (author_phon)");
  Run("analyze books");
  for (const char* hint : {"naive", "qgram", "phonetic", "parallel"}) {
    const QueryResult result = Run(
        std::string("select author from books where author LexEQUAL "
                    "'Nehru' Threshold 0.25 USING ") +
        hint);
    const engine::QueryStats& s = result.stats;
    EXPECT_EQ(s.udf_calls, s.match.dp_evaluations) << hint;
    EXPECT_EQ(s.match.tuples_scanned,
              s.match.filter_rejections + s.match.dp_evaluations)
        << hint;
    EXPECT_GT(s.match.tuples_scanned, 0u) << hint;
    EXPECT_EQ(s.match.matches, result.rows.size()) << hint;
  }
}

TEST_F(ExplainTest, ExplainRejectsUnsupportedShapes) {
  Result<QueryResult> no_pred =
      ExecuteQuery(&*session_, "explain select author from books");
  EXPECT_FALSE(no_pred.ok());
  EXPECT_EQ(no_pred.status().code(), StatusCode::kNotSupported);
}

TEST_F(ExplainTest, UsingAutoMatchesHintFreeQuery) {
  const std::string base =
      "select title from books where author LexEQUAL 'Nehru' "
      "Threshold 0.25";
  const QueryResult plain = Run(base);
  const QueryResult with_auto = Run(base + " USING auto");
  ASSERT_EQ(plain.rows.size(), with_auto.rows.size());
  for (size_t i = 0; i < plain.rows.size(); ++i) {
    EXPECT_EQ(plain.rows[i][0].AsString().text(),
              with_auto.rows[i][0].AsString().text());
  }
}

}  // namespace
}  // namespace lexequal::sql
