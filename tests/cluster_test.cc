#include "phonetic/cluster.h"

#include <gtest/gtest.h>

namespace lexequal::phonetic {
namespace {

using P = Phoneme;

TEST(ClusterTest, DefaultTableCoversAllPhonemesWithinLimit) {
  const ClusterTable& t = ClusterTable::Default();
  EXPECT_LE(t.cluster_count(), kMaxClusters);
  for (int i = 0; i < kPhonemeCount; ++i) {
    EXPECT_LT(t.cluster_of(static_cast<Phoneme>(i)), kMaxClusters);
  }
}

TEST(ClusterTest, LikePhonemesShareClusters) {
  const ClusterTable& t = ClusterTable::Default();
  // Aspiration is intra-cluster (Hindi ph vs English p).
  EXPECT_TRUE(t.SameCluster(P::kP, P::kPh));
  // Dental/retroflex t variants cluster (English t vs Indic ʈ).
  EXPECT_TRUE(t.SameCluster(P::kT, P::kTt));
  EXPECT_TRUE(t.SameCluster(P::kD, P::kDd));
  // Voicing is intra-cluster for stops (Tamil script ambiguity).
  EXPECT_TRUE(t.SameCluster(P::kK, P::kG));
  // Vowel reductions: a/ə/æ cluster.
  EXPECT_TRUE(t.SameCluster(P::kA, P::kSchwa));
  EXPECT_TRUE(t.SameCluster(P::kA, P::kAe));
  // Front vowels together.
  EXPECT_TRUE(t.SameCluster(P::kI, P::kIh));
  EXPECT_TRUE(t.SameCluster(P::kE, P::kEh));
  // Rhotics together.
  EXPECT_TRUE(t.SameCluster(P::kR, P::kRr));
}

TEST(ClusterTest, UnlikePhonemesSeparate) {
  const ClusterTable& t = ClusterTable::Default();
  EXPECT_FALSE(t.SameCluster(P::kP, P::kK));   // place differs
  EXPECT_FALSE(t.SameCluster(P::kM, P::kN));   // m is its own cluster
  EXPECT_FALSE(t.SameCluster(P::kL, P::kR));   // lateral vs rhotic
  EXPECT_FALSE(t.SameCluster(P::kA, P::kI));   // open vs front vowel
  EXPECT_FALSE(t.SameCluster(P::kS, P::kSh));  // s vs ʃ region
  EXPECT_FALSE(t.SameCluster(P::kF, P::kP));   // fricative vs stop
}

TEST(ClusterTest, CreateRejectsOverflowingIds) {
  std::array<ClusterId, kPhonemeCount> a{};
  a[0] = kMaxClusters;  // one past the maximum
  EXPECT_TRUE(ClusterTable::Create(a).status().IsInvalidArgument());
}

TEST(ClusterTest, FromGroupsAssignsSingletons) {
  // Two explicit groups; everything else becomes singleton clusters —
  // which overflows unless the groups cover enough phonemes, so cover
  // most of the inventory with two giant groups.
  std::vector<std::vector<Phoneme>> groups(2);
  for (int i = 0; i < kPhonemeCount; ++i) {
    Phoneme p = static_cast<Phoneme>(i);
    if (i >= kPhonemeCount - 3) continue;  // leave 3 unassigned
    groups[IsVowel(p) ? 0 : 1].push_back(p);
  }
  Result<ClusterTable> t = ClusterTable::FromGroups(groups);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().cluster_count(), 5);  // 2 groups + 3 singletons
  // The three singletons do not share clusters.
  Phoneme last = static_cast<Phoneme>(kPhonemeCount - 1);
  Phoneme prev = static_cast<Phoneme>(kPhonemeCount - 2);
  EXPECT_FALSE(t.value().SameCluster(last, prev));
}

TEST(ClusterTest, FromGroupsRejectsDuplicates) {
  std::vector<std::vector<Phoneme>> groups = {{P::kA, P::kA}};
  EXPECT_TRUE(ClusterTable::FromGroups(groups).status().IsInvalidArgument());
}

TEST(ClusterTest, FromGroupsRejectsTooManySingletons) {
  // No groups: every phoneme would need its own cluster.
  EXPECT_TRUE(
      ClusterTable::FromGroups({}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace lexequal::phonetic
