#include "engine/executor.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "engine/engine.h"

namespace lexequal::engine {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_executor_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
    auto db = Engine::Open(path_.string(), 256);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    Schema schema({{"id", ValueType::kInt64, std::nullopt},
                   {"name", ValueType::kString, std::nullopt}});
    ASSERT_TRUE(db_->CreateTable("t", schema).ok());
    for (int i = 0; i < 20; ++i) {
      Tuple values{Value::Int64(i),
                   Value::String("name" + std::to_string(i % 5),
                                 text::Language::kEnglish)};
      ASSERT_TRUE(db_->Insert("t", values).ok());
    }
    table_ = db_->GetTable("t").value();
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove(path_);
  }

  std::filesystem::path path_;
  std::unique_ptr<Engine> db_;
  TableInfo* table_ = nullptr;
};

TEST_F(ExecutorTest, SeqScanReturnsAllRows) {
  SeqScanExecutor scan(table_);
  Result<std::vector<Tuple>> rows = Collect(scan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 20u);
}

TEST_F(ExecutorTest, FilterSelectsMatchingRows) {
  auto scan = std::make_unique<SeqScanExecutor>(table_);
  auto pred = std::make_unique<CompareExpr>(
      CompareOp::kEqTextOnly, std::make_unique<ColumnRefExpr>(1),
      std::make_unique<ConstExpr>(Value::String("name2")));
  FilterExecutor filter(std::move(scan), std::move(pred));
  Result<std::vector<Tuple>> rows = Collect(filter);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);  // ids 2, 7, 12, 17
}

TEST_F(ExecutorTest, ProjectionNarrowsColumns) {
  auto scan = std::make_unique<SeqScanExecutor>(table_);
  std::vector<ExprPtr> exprs;
  exprs.push_back(std::make_unique<ColumnRefExpr>(0));
  ProjectionExecutor proj(std::move(scan), std::move(exprs));
  Result<std::vector<Tuple>> rows = Collect(proj);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 20u);
  EXPECT_EQ((*rows)[0].size(), 1u);
  EXPECT_EQ((*rows)[5][0].AsInt64(), 5);
}

TEST_F(ExecutorTest, NestedLoopJoinCrossAndPredicate) {
  // Self-join on name equality: 5 name groups of 4 rows each -> 4*4
  // per group, 5 groups = 80 pairs.
  auto left = std::make_unique<SeqScanExecutor>(table_);
  auto right = std::make_unique<SeqScanExecutor>(table_);
  auto pred = std::make_unique<CompareExpr>(
      CompareOp::kEqTextOnly, std::make_unique<ColumnRefExpr>(1),
      std::make_unique<ColumnRefExpr>(3));
  NestedLoopJoinExecutor join(std::move(left), std::move(right),
                              std::move(pred));
  Result<std::vector<Tuple>> rows = Collect(join);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 80u);
  EXPECT_EQ((*rows)[0].size(), 4u);  // concatenated width
}

TEST_F(ExecutorTest, LimitCapsStream) {
  auto scan = std::make_unique<SeqScanExecutor>(table_);
  LimitExecutor limit(std::move(scan), 7);
  Result<std::vector<Tuple>> rows = Collect(limit);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 7u);
}

TEST_F(ExecutorTest, RidLookupSkipsDeleted) {
  // Gather some RIDs via scan, delete one, look all up.
  SeqScanExecutor scan(table_);
  ASSERT_TRUE(scan.Init().ok());
  std::vector<storage::RID> rids;
  Tuple row;
  while (true) {
    Result<bool> has = scan.Next(&row);
    ASSERT_TRUE(has.ok());
    if (!has.value()) break;
    rids.push_back(scan.current_rid());
  }
  ASSERT_EQ(rids.size(), 20u);
  ASSERT_TRUE(table_->heap->Delete(rids[3]).ok());
  RidLookupExecutor lookup(table_, rids);
  Result<std::vector<Tuple>> rows = Collect(lookup);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 19u);
}

TEST_F(ExecutorTest, LogicAndNotExpressions) {
  // (id == 3) OR (id == 4), NOT variants.
  auto make_id_eq = [](int64_t v) {
    return std::make_unique<CompareExpr>(
        CompareOp::kEq, std::make_unique<ColumnRefExpr>(0),
        std::make_unique<ConstExpr>(Value::Int64(v)));
  };
  auto pred = std::make_unique<LogicExpr>(LogicOp::kOr, make_id_eq(3),
                                          make_id_eq(4));
  auto scan = std::make_unique<SeqScanExecutor>(table_);
  FilterExecutor filter(std::move(scan), std::move(pred));
  Result<std::vector<Tuple>> rows = Collect(filter);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);

  auto scan2 = std::make_unique<SeqScanExecutor>(table_);
  auto not_pred = std::make_unique<NotExpr>(make_id_eq(3));
  FilterExecutor filter2(std::move(scan2), std::move(not_pred));
  rows = Collect(filter2);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 19u);
}

TEST_F(ExecutorTest, HashGroupByCountsPerKey) {
  // GROUP BY name: 5 groups of 4 rows each.
  auto scan = std::make_unique<SeqScanExecutor>(table_);
  std::vector<ExprPtr> keys;
  keys.push_back(std::make_unique<ColumnRefExpr>(1));
  HashGroupByExecutor group_by(std::move(scan), std::move(keys),
                               /*having=*/nullptr);
  Result<std::vector<Tuple>> rows = Collect(group_by);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 5u);
  for (const Tuple& row : *rows) {
    ASSERT_EQ(row.size(), 2u);  // key + COUNT(*)
    EXPECT_EQ(row[1].AsInt64(), 4);
  }
}

TEST_F(ExecutorTest, HashGroupByHavingFilters) {
  // GROUP BY id % nothing -- use name again but HAVING count >= 5
  // rejects every group (all have 4).
  auto scan = std::make_unique<SeqScanExecutor>(table_);
  std::vector<ExprPtr> keys;
  keys.push_back(std::make_unique<ColumnRefExpr>(1));
  // HAVING COUNT(*) <> 4  (the count sits at ordinal 1 of the output).
  auto having = std::make_unique<NotExpr>(std::make_unique<CompareExpr>(
      CompareOp::kEq, std::make_unique<ColumnRefExpr>(1),
      std::make_unique<ConstExpr>(Value::Int64(4))));
  HashGroupByExecutor group_by(std::move(scan), std::move(keys),
                               std::move(having));
  Result<std::vector<Tuple>> rows = Collect(group_by);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(ExecutorTest, HashGroupByEmptyInput) {
  auto scan = std::make_unique<SeqScanExecutor>(table_);
  auto never = std::make_unique<CompareExpr>(
      CompareOp::kEq, std::make_unique<ColumnRefExpr>(0),
      std::make_unique<ConstExpr>(Value::Int64(-1)));
  auto filtered = std::make_unique<FilterExecutor>(std::move(scan),
                                                   std::move(never));
  std::vector<ExprPtr> keys;
  keys.push_back(std::make_unique<ColumnRefExpr>(1));
  HashGroupByExecutor group_by(std::move(filtered), std::move(keys),
                               nullptr);
  Result<std::vector<Tuple>> rows = Collect(group_by);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(ExecutorTest, TupleSerializationRoundTrip) {
  Tuple t{Value::Int64(-42), Value::Double(3.5),
          Value::String("नेहरु", text::Language::kHindi)};
  Result<Tuple> back = DeserializeTuple(SerializeTuple(t));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 3u);
  EXPECT_EQ((*back)[0], t[0]);
  EXPECT_EQ((*back)[1], t[1]);
  EXPECT_EQ((*back)[2], t[2]);
}

TEST_F(ExecutorTest, TupleDeserializeRejectsCorrupt) {
  std::string good = SerializeTuple({Value::Int64(7)});
  EXPECT_TRUE(DeserializeTuple(good.substr(0, good.size() - 2))
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(DeserializeTuple("xy").status().IsCorruption());
}

}  // namespace
}  // namespace lexequal::engine
