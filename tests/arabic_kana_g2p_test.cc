#include <gtest/gtest.h>

#include "g2p/arabic_g2p.h"
#include "g2p/kana_g2p.h"
#include "match/lexequal.h"
#include "text/utf8.h"

namespace lexequal::g2p {
namespace {

using text::EncodeUtf8;

class ArabicG2PTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    arabic_ = ArabicG2P::Create().value().release();
  }
  static std::string Ipa(const std::vector<uint32_t>& cps) {
    Result<phonetic::PhonemeString> ps =
        arabic_->ToPhonemes(EncodeUtf8(cps));
    EXPECT_TRUE(ps.ok()) << ps.status();
    return ps.ok() ? ps.value().ToIpa() : "<error>";
  }
  static ArabicG2P* arabic_;
};

ArabicG2P* ArabicG2PTest::arabic_ = nullptr;

TEST_F(ArabicG2PTest, ConsonantSkeleton) {
  // محمد (Muhammad, unvocalized): m h m d with shadda on the middle m.
  std::string ipa = Ipa({0x0645, 0x062D, 0x0645, 0x0651, 0x062F});
  EXPECT_EQ(ipa, "mhmmd");
}

TEST_F(ArabicG2PTest, LongVowels) {
  // سلام (salaam unvocalized): s l a m.
  EXPECT_EQ(Ipa({0x0633, 0x0644, 0x0627, 0x0645}), "slam");
  // نور (nur): n u r.
  EXPECT_EQ(Ipa({0x0646, 0x0648, 0x0631}), "nur");
  // أمير (amir): a m i r.
  EXPECT_EQ(Ipa({0x0623, 0x0645, 0x064A, 0x0631}), "amir");
}

TEST_F(ArabicG2PTest, Diacritics) {
  // مُحَمَّد fully vocalized: m-u-h-a-mm-a-d.
  std::string ipa = Ipa({0x0645, 0x064F, 0x062D, 0x064E, 0x0645,
                         0x0651, 0x064E, 0x062F});
  EXPECT_EQ(ipa, "mʊhammad");
}

TEST_F(ArabicG2PTest, TaMarbutaIsFinalA) {
  // ة -> a (Fatima فاطمة: f a t m a).
  EXPECT_EQ(Ipa({0x0641, 0x0627, 0x0637, 0x0645, 0x0629}), "fatma");
}

TEST_F(ArabicG2PTest, RejectsForeignText) {
  EXPECT_FALSE(arabic_->ToPhonemes("abc").ok());
}

TEST_F(ArabicG2PTest, AlQaedaMatchesAcrossScripts) {
  // The paper's opening example: "it is not possible to automatically
  // match the English string Al-Qaeda and its equivalent ... in
  // Arabic". With LexEQUAL it is: القاعدة ~ Al-Qaeda.
  match::LexEqualMatcher matcher(
      {.threshold = 0.35, .intra_cluster_cost = 0.25});
  text::TaggedString english("Al-Qaeda", text::Language::kEnglish);
  text::TaggedString arabic(
      EncodeUtf8({0x0627, 0x0644, 0x0642, 0x0627, 0x0639, 0x062F,
                  0x0629}),
      text::Language::kArabic);
  EXPECT_EQ(matcher.Match(english, arabic), match::MatchOutcome::kTrue);
  // And a control that must not match.
  text::TaggedString control("Hydrogen", text::Language::kEnglish);
  EXPECT_EQ(matcher.Match(control, arabic), match::MatchOutcome::kFalse);
}

class KanaG2PTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kana_ = KanaG2P::Create().value().release();
  }
  static std::string Ipa(const std::vector<uint32_t>& cps) {
    Result<phonetic::PhonemeString> ps =
        kana_->ToPhonemes(EncodeUtf8(cps));
    EXPECT_TRUE(ps.ok()) << ps.status();
    return ps.ok() ? ps.value().ToIpa() : "<error>";
  }
  static KanaG2P* kana_;
};

KanaG2P* KanaG2PTest::kana_ = nullptr;

TEST_F(KanaG2PTest, HiraganaSyllables) {
  // さくら sakura.
  EXPECT_EQ(Ipa({0x3055, 0x304F, 0x3089}), "sakuɾa");
  // とうきょう Tokyo: long vowels fold.
  EXPECT_EQ(Ipa({0x3068, 0x3046, 0x304D, 0x3087, 0x3046}), "toukjou");
}

TEST_F(KanaG2PTest, KatakanaNormalizes) {
  // テライ Terai (the Fig. 1 author's reading, in katakana).
  EXPECT_EQ(Ipa({0x30C6, 0x30E9, 0x30A4}), "teɾai");
  // カタカナ == かたかな.
  EXPECT_EQ(Ipa({0x30AB, 0x30BF, 0x30AB, 0x30CA}),
            Ipa({0x304B, 0x305F, 0x304B, 0x306A}));
}

TEST_F(KanaG2PTest, ContextualSigns) {
  // ん moraic nasal: けん -> ken.
  EXPECT_EQ(Ipa({0x3051, 0x3093}), "ken");
  // っ sokuon folds (length is non-phonemic here): きって -> kite.
  EXPECT_EQ(Ipa({0x304D, 0x3063, 0x3066}), "kite");
  // ー long-vowel mark folds: ラーメン -> ɾamen.
  EXPECT_EQ(Ipa({0x30E9, 0x30FC, 0x30E1, 0x30F3}), "ɾamen");
}

TEST_F(KanaG2PTest, YoonDigraphs) {
  // きゃ -> kja, しゅ -> ʃu.
  EXPECT_EQ(Ipa({0x304D, 0x3083}), "kja");
  EXPECT_EQ(Ipa({0x3057, 0x3085}), "ʃu");
}

TEST_F(KanaG2PTest, KanjiIsRejected) {
  // 寺井 (the Fig. 1 Japanese author) has no reading without a
  // dictionary; the row becomes unmatchable, as in the paper.
  EXPECT_TRUE(kana_->ToPhonemes("\xE5\xAF\xBA\xE4\xBA\x95")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(KanaG2PTest, LoanwordMatchesKatakana) {
  // カメラ (kamera) ~ "Camera" across scripts.
  match::LexEqualMatcher matcher(
      {.threshold = 0.35, .intra_cluster_cost = 0.25});
  text::TaggedString english("Camera", text::Language::kEnglish);
  text::TaggedString katakana(EncodeUtf8({0x30AB, 0x30E1, 0x30E9}),
                              text::Language::kJapanese);
  EXPECT_EQ(matcher.Match(english, katakana),
            match::MatchOutcome::kTrue);
  EXPECT_EQ(matcher.Match(
                text::TaggedString("Hydrogen", text::Language::kEnglish),
                katakana),
            match::MatchOutcome::kFalse);
  // Epenthetic vowels (スミス "Sumisu" for Smith) need much looser
  // thresholds — the hard case for Japanese, worth documenting.
  match::LexEqualMatcher loose(
      {.threshold = 0.85, .intra_cluster_cost = 0.25});
  text::TaggedString smith("Smith", text::Language::kEnglish);
  text::TaggedString sumisu(EncodeUtf8({0x30B9, 0x30DF, 0x30B9}),
                            text::Language::kJapanese);
  EXPECT_EQ(loose.Match(smith, sumisu), match::MatchOutcome::kTrue);
}

}  // namespace
}  // namespace lexequal::g2p
