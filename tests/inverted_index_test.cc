// InvertedIndex coverage: the posting-list codec (varint + delta
// roundtrips, corruption fuzz), the index proper (Add ordering,
// threshold-candidate parity with the q-gram B-Tree plan), the
// once-per-query probe-build discipline, and catalog persistence of
// the index across reopen.

#include "index/inverted_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "dataset/lexicon.h"
#include "engine/session.h"
#include "match/qgram.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "text/tagged_string.h"

namespace lexequal::index {
namespace {

using engine::Engine;
using engine::IndexSpec;
using engine::LexEqualPlan;
using engine::LexEqualQueryOptions;
using engine::QueryRequest;
using engine::QueryResult;
using engine::QueryStats;
using engine::Schema;
using engine::Session;
using engine::TableInfo;
using engine::Tuple;
using engine::Value;
using engine::ValueType;
using phonetic::kPhonemeCount;
using phonetic::Phoneme;
using phonetic::PhonemeString;
using text::Language;
using text::TaggedString;

// ---------------------------------------------------------------- codec

TEST(InvidxCodecTest, VarintRoundtripsEdgeValues) {
  const uint64_t values[] = {0,     1,          127,        128,
                             16383, 16384,      0xFFFFFFFF, 1ull << 56,
                             ~0ull, 0x8000ull,  300,        7};
  for (uint64_t v : values) {
    std::string buf;
    invidx::AppendVarint(v, &buf);
    uint64_t out = 0;
    const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
    size_t used = invidx::DecodeVarint(p, p + buf.size(), &out);
    EXPECT_EQ(used, buf.size()) << v;
    EXPECT_EQ(out, v);
  }
}

TEST(InvidxCodecTest, VarintRejectsTruncation) {
  std::string buf;
  invidx::AppendVarint(~0ull, &buf);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    uint64_t out = 0;
    EXPECT_EQ(invidx::DecodeVarint(p, p + cut, &out), 0u) << cut;
  }
}

TEST(InvidxCodecTest, VarintRejectsOverlongEncodings) {
  // 11 continuation bytes can never be a valid uint64 varint.
  std::string buf(11, static_cast<char>(0x80));
  buf.push_back(0x01);
  uint64_t out = 0;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
  EXPECT_EQ(invidx::DecodeVarint(p, p + buf.size(), &out), 0u);
}

std::vector<invidx::Posting> RandomPostings(Random* rng, size_t n) {
  std::vector<invidx::Posting> postings;
  uint64_t docid = 0;
  for (size_t i = 0; i < n; ++i) {
    docid += 1 + rng->Uniform(1000);
    invidx::Posting p;
    p.docid = docid;
    p.len = static_cast<uint32_t>(1 + rng->Uniform(40));
    uint32_t pos = 0;
    const size_t npos = 1 + rng->Uniform(4);
    for (size_t j = 0; j < npos; ++j) {
      pos += static_cast<uint32_t>(1 + rng->Uniform(10));
      p.positions.push_back(pos);
    }
    postings.push_back(std::move(p));
  }
  return postings;
}

std::string EncodePostings(const std::vector<invidx::Posting>& postings) {
  std::string payload;
  uint64_t prev = 0;
  for (const invidx::Posting& p : postings) {
    invidx::AppendPosting(p, prev, &payload);
    prev = p.docid;
  }
  return payload;
}

TEST(InvidxCodecTest, PostingRoundtrip) {
  Random rng(7);
  for (int round = 0; round < 50; ++round) {
    const std::vector<invidx::Posting> in =
        RandomPostings(&rng, 1 + rng.Uniform(64));
    Result<std::vector<invidx::Posting>> out = invidx::DecodePostings(
        EncodePostings(in), static_cast<uint32_t>(in.size()));
    ASSERT_TRUE(out.ok()) << out.status();
    EXPECT_EQ(*out, in);
  }
}

TEST(InvidxCodecTest, DecodeRejectsCountPastPayload) {
  Random rng(8);
  const std::vector<invidx::Posting> in = RandomPostings(&rng, 5);
  const std::string payload = EncodePostings(in);
  // Asking for more postings than the payload holds must fail cleanly,
  // even for absurd counts (no unbounded allocation).
  for (uint32_t n : {6u, 100u, 0xFFFFu}) {
    EXPECT_FALSE(invidx::DecodePostings(payload, n).ok()) << n;
  }
}

// Every single-byte mutation of a valid payload must decode cleanly
// (the mutation landed in a "don't care" spot) or surface Corruption —
// never crash, hang, or allocate absurdly. ASan/UBSan runs of this
// test are the real teeth.
TEST(InvidxCodecTest, CorruptionFuzzSingleByteMutations) {
  Random rng(42);
  for (int round = 0; round < 200; ++round) {
    const std::vector<invidx::Posting> in =
        RandomPostings(&rng, 1 + rng.Uniform(16));
    std::string payload = EncodePostings(in);
    const size_t at = rng.Uniform(payload.size());
    payload[at] = static_cast<char>(rng.Uniform(256));
    Result<std::vector<invidx::Posting>> out = invidx::DecodePostings(
        payload, static_cast<uint32_t>(in.size()));
    if (out.ok()) {
      // Whatever decoded must at least honor the structural invariants.
      uint64_t prev = 0;
      for (const invidx::Posting& p : *out) {
        EXPECT_GT(p.docid, prev);
        prev = p.docid;
        EXPECT_TRUE(std::is_sorted(p.positions.begin(),
                                   p.positions.end()));
      }
    }
  }
}

TEST(InvidxCodecTest, CorruptionFuzzTruncations) {
  Random rng(43);
  for (int round = 0; round < 100; ++round) {
    const std::vector<invidx::Posting> in =
        RandomPostings(&rng, 1 + rng.Uniform(16));
    const std::string payload = EncodePostings(in);
    const std::string cut =
        payload.substr(0, rng.Uniform(payload.size()));
    // Truncation may still hold a prefix of whole postings; claiming
    // the full count must fail.
    EXPECT_FALSE(
        invidx::DecodePostings(cut, static_cast<uint32_t>(in.size()))
            .ok());
  }
}

TEST(InvidxCodecTest, ScoreUpperBoundIsMonotonic) {
  invidx::ScoreBounds bounds;
  bounds.min_indel = 1.0;
  bounds.cheapest_edit = 0.5;
  bounds.min_len = 2;
  bounds.max_len = 20;
  // More matching grams can never lower the bound.
  double prev = -1e9;
  for (uint64_t m = 0; m <= 12; ++m) {
    const double ub = invidx::ScoreUpperBound(10, 10, m, 2, bounds);
    EXPECT_GE(ub, prev) << m;
    prev = ub;
  }
  // A full-match candidate bounds at (or above) the perfect score.
  EXPECT_GE(invidx::ScoreUpperBound(10, 10, 11, 2, bounds), 1.0 - 1e-9);
}

// ----------------------------------------------------- index mechanics

class InvertedIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_invidx_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
    auto disk = storage::DiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    disk_ = std::move(disk).value();
    pool_ = std::make_unique<storage::BufferPool>(disk_.get(), 128);
  }
  void TearDown() override {
    pool_.reset();
    disk_.reset();
    std::filesystem::remove(path_);
  }

  static PhonemeString RandomPhonemes(Random* rng, size_t len) {
    std::vector<Phoneme> syms;
    for (size_t i = 0; i < len; ++i) {
      syms.push_back(
          static_cast<Phoneme>(rng->Uniform(kPhonemeCount)));
    }
    return PhonemeString(std::move(syms));
  }

  std::filesystem::path path_;
  std::unique_ptr<storage::DiskManager> disk_;
  std::unique_ptr<storage::BufferPool> pool_;
};

TEST_F(InvertedIndexTest, AddRejectsOutOfOrderDocids) {
  Result<InvertedIndex> idx = InvertedIndex::Create(pool_.get(), 2);
  ASSERT_TRUE(idx.ok());
  Random rng(1);
  const PhonemeString s = RandomPhonemes(&rng, 6);
  const auto grams = match::PositionalQGrams(s, 2);
  ASSERT_TRUE(idx->Add(100, grams, 6).ok());
  ASSERT_TRUE(idx->Add(200, grams, 6).ok());
  EXPECT_FALSE(idx->Add(150, grams, 6).ok());
  EXPECT_FALSE(idx->Add(200, grams, 6).ok());
}

TEST_F(InvertedIndexTest, TotalsCountEveryPosting) {
  Result<InvertedIndex> idx = InvertedIndex::Create(pool_.get(), 2);
  ASSERT_TRUE(idx.ok());
  Random rng(2);
  uint64_t expected_postings = 0;
  std::set<uint64_t> distinct;
  for (uint64_t doc = 1; doc <= 200; ++doc) {
    const PhonemeString s = RandomPhonemes(&rng, 3 + rng.Uniform(8));
    const auto grams = match::PositionalQGrams(s, 2);
    // One posting per distinct gram in the doc.
    std::set<uint64_t> doc_grams;
    for (const auto& g : grams) doc_grams.insert(g.gram);
    expected_postings += doc_grams.size();
    distinct.insert(doc_grams.begin(), doc_grams.end());
    ASSERT_TRUE(
        idx->Add(doc, grams, static_cast<uint32_t>(s.size())).ok());
  }
  Result<InvertedIndex::Totals> totals = idx->ComputeTotals();
  ASSERT_TRUE(totals.ok()) << totals.status();
  EXPECT_EQ(totals->distinct_grams, distinct.size());
  EXPECT_EQ(totals->total_postings, expected_postings);
}

TEST_F(InvertedIndexTest, ThresholdCandidatesFindSelf) {
  Result<InvertedIndex> idx = InvertedIndex::Create(pool_.get(), 2);
  ASSERT_TRUE(idx.ok());
  Random rng(3);
  std::vector<PhonemeString> docs;
  for (uint64_t doc = 1; doc <= 100; ++doc) {
    docs.push_back(RandomPhonemes(&rng, 4 + rng.Uniform(6)));
    const auto grams = match::PositionalQGrams(docs.back(), 2);
    ASSERT_TRUE(
        idx->Add(doc, grams, static_cast<uint32_t>(docs.back().size()))
            .ok());
  }
  for (uint64_t doc : {1ull, 37ull, 100ull}) {
    const match::QGramProbe probe =
        match::BuildQGramProbe(docs[doc - 1], 2);
    invidx::Stats stats;
    Result<std::vector<uint64_t>> cands =
        idx->ThresholdCandidates(probe, 0.3, &stats);
    ASSERT_TRUE(cands.ok()) << cands.status();
    EXPECT_TRUE(std::is_sorted(cands->begin(), cands->end()));
    EXPECT_TRUE(
        std::binary_search(cands->begin(), cands->end(), doc))
        << "doc " << doc << " missing from its own candidates";
  }
}

// ------------------------------------------------- engine integration

class InvidxEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_invidx_engine_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
    auto db = Engine::Open(path_.string(), 2048);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();

    Result<dataset::Lexicon> lexicon = dataset::Lexicon::BuildTrilingual();
    ASSERT_TRUE(lexicon.ok());
    rows_ = dataset::GenerateConcatenatedDataset(lexicon.value(), 800);
    ASSERT_GE(rows_.size(), 800u);

    Schema schema({
        {"name", ValueType::kString, std::nullopt},
        {"name_phon", ValueType::kString, 0},
    });
    ASSERT_TRUE(db_->CreateTable("names", schema).ok());
    for (const dataset::LexiconEntry& e : rows_) {
      Tuple values{Value::String(e.text, e.language)};
      ASSERT_TRUE(db_->Insert("names", values).ok());
    }
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove(path_);
  }

  Result<QueryResult> Select(LexEqualPlan plan,
                             const TaggedString& query) {
    Session session = db_->CreateSession();
    LexEqualQueryOptions options;
    options.hints.plan = plan;
    QueryRequest req = QueryRequest::ThresholdSelect("names", "name", query);
    req.options = options;
    return session.Execute(req);
  }

  static std::vector<std::string> Texts(const std::vector<Tuple>& rows) {
    std::vector<std::string> out;
    for (const Tuple& row : rows) out.push_back(row[0].AsString().text());
    std::sort(out.begin(), out.end());
    return out;
  }

  std::filesystem::path path_;
  std::unique_ptr<Engine> db_;
  std::vector<dataset::LexiconEntry> rows_;
};

TEST_F(InvidxEngineTest, ThresholdParityWithQGramPlan) {
  ASSERT_TRUE(db_->CreateIndex({.kind = IndexSpec::Kind::kQGram,
                                .table = "names",
                                .column = "name_phon",
                                .q = 2}).ok());
  ASSERT_TRUE(db_->CreateIndex({.kind = IndexSpec::Kind::kInverted,
                                .table = "names",
                                .column = "name_phon",
                                .q = 2}).ok());
  for (size_t i : {0u, 5u, 42u, 137u}) {
    const TaggedString query(rows_[i].text, rows_[i].language);
    Result<QueryResult> via_qgram =
        Select(LexEqualPlan::kQGramFilter, query);
    ASSERT_TRUE(via_qgram.ok()) << via_qgram.status();
    Result<QueryResult> via_invidx =
        Select(LexEqualPlan::kInvertedIndex, query);
    ASSERT_TRUE(via_invidx.ok()) << via_invidx.status();
    EXPECT_EQ(Texts(via_invidx->rows), Texts(via_qgram->rows))
        << "probe " << i;
    EXPECT_FALSE(via_invidx->rows.empty());  // at least the self match
    EXPECT_GT(via_invidx->stats.invidx_postings, 0u);
  }
}

TEST_F(InvidxEngineTest, ProbeBuiltExactlyOncePerQuery) {
  ASSERT_TRUE(db_->CreateIndex({.kind = IndexSpec::Kind::kQGram,
                                .table = "names",
                                .column = "name_phon",
                                .q = 2}).ok());
  ASSERT_TRUE(db_->CreateIndex({.kind = IndexSpec::Kind::kInverted,
                                .table = "names",
                                .column = "name_phon",
                                .q = 2}).ok());
  obs::Counter* builds = obs::MetricsRegistry::Default().GetCounter(
      "lexequal_qgram_probe_builds");
  const TaggedString query(rows_[9].text, rows_[9].language);
  for (LexEqualPlan plan :
       {LexEqualPlan::kQGramFilter, LexEqualPlan::kInvertedIndex}) {
    const uint64_t before = builds->value();
    ASSERT_TRUE(Select(plan, query).ok());
    // The probe grams are computed once at the query boundary — never
    // per gram list, per chunk, or per posting block (the regression
    // this test pins: see match::QGramProbe).
    EXPECT_EQ(builds->value() - before, 1u)
        << engine::LexEqualPlanName(plan);
  }
}

TEST_F(InvidxEngineTest, TopKBuildsProbeOncePerQuery) {
  ASSERT_TRUE(db_->CreateIndex({.kind = IndexSpec::Kind::kInverted,
                                .table = "names",
                                .column = "name_phon",
                                .q = 2}).ok());
  obs::Counter* builds = obs::MetricsRegistry::Default().GetCounter(
      "lexequal_qgram_probe_builds");
  const uint64_t before = builds->value();
  Session session = db_->CreateSession();
  Result<QueryResult> top = session.Execute(QueryRequest::TopK(
      "names", "name", TaggedString(rows_[4].text, rows_[4].language), 5));
  ASSERT_TRUE(top.ok()) << top.status();
  EXPECT_EQ(builds->value() - before, 1u);
}

TEST_F(InvidxEngineTest, SurvivesReopen) {
  ASSERT_TRUE(db_->CreateIndex({.kind = IndexSpec::Kind::kInverted,
                                .table = "names",
                                .column = "name_phon",
                                .q = 3}).ok());
  const TaggedString query(rows_[17].text, rows_[17].language);
  Result<QueryResult> before =
      Select(LexEqualPlan::kInvertedIndex, query);
  ASSERT_TRUE(before.ok()) << before.status();
  ASSERT_TRUE(db_->Flush().ok());
  db_.reset();

  auto reopened = Engine::Open(path_.string(), 2048);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  db_ = std::move(reopened).value();
  TableInfo* info = db_->GetTable("names").value();
  ASSERT_NE(info->inverted_index, nullptr);
  EXPECT_EQ(info->inverted_index->q, 3);
  EXPECT_EQ(info->inverted_index->indexed_rows, rows_.size());

  Result<QueryResult> after =
      Select(LexEqualPlan::kInvertedIndex, query);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(Texts(after->rows), Texts(before->rows));

  // Inserts after reopen reach the index.
  Tuple values{Value::String(rows_[17].text, rows_[17].language)};
  ASSERT_TRUE(db_->Insert("names", values).ok());
  Result<QueryResult> grown =
      Select(LexEqualPlan::kInvertedIndex, query);
  ASSERT_TRUE(grown.ok()) << grown.status();
  EXPECT_EQ(grown->rows.size(), after->rows.size() + 1);
}

TEST_F(InvidxEngineTest, AnalyzeFillsInvidxStats) {
  ASSERT_TRUE(db_->CreateIndex({.kind = IndexSpec::Kind::kInverted,
                                .table = "names",
                                .column = "name_phon",
                                .q = 2}).ok());
  ASSERT_TRUE(db_->Analyze("names").ok());
  TableInfo* info = db_->GetTable("names").value();
  ASSERT_TRUE(info->stats.analyzed);
  const engine::PhonemicColumnStats* col =
      info->stats.ForColumn(info->inverted_index->column);
  ASSERT_NE(col, nullptr);
  EXPECT_EQ(col->invidx_q, 2);
  EXPECT_GT(col->invidx_distinct_grams, 0u);
  EXPECT_GT(col->invidx_total_postings, 0u);
}

}  // namespace
}  // namespace lexequal::index
