// Robustness: the SQL front end must turn arbitrary garbage into a
// Status, never a crash, and must hold its grammar invariants over
// randomly generated near-valid queries.

#include <gtest/gtest.h>

#include <filesystem>

#include "common/random.h"
#include "engine/session.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace lexequal::sql {
namespace {

TEST(SqlFuzzTest, RandomBytesNeverCrashTheLexer) {
  Random rng(20260706);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string input;
    const size_t len = rng.Uniform(64);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(32 + rng.Uniform(95)));
    }
    (void)Parse(input);  // must return, not crash
  }
}

TEST(SqlFuzzTest, RandomTokenSoupNeverCrashesTheParser) {
  Random rng(42);
  const char* vocab[] = {
      "SELECT", "FROM",       "WHERE",  "AND",      "LexEQUAL",
      "Threshold", "inlanguages", "USING", "LIMIT",  "*",
      ",",      ".",          "=",      "<>",       "(",
      ")",      "{",          "}",      "'Nehru'",  "0.25",
      "books",  "author",     "B1",     "English",  ";",
  };
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input;
    const size_t len = rng.Uniform(20);
    for (size_t i = 0; i < len; ++i) {
      input += vocab[rng.Uniform(std::size(vocab))];
      input += ' ';
    }
    Result<SelectStatement> r = Parse(input);
    if (r.ok()) {
      // Whatever parses must satisfy basic invariants.
      EXPECT_GE(r->tables.size(), 1u);
      EXPECT_LE(r->tables.size(), 2u);
    }
  }
}

TEST(SqlFuzzTest, GeneratedValidQueriesAlwaysParse) {
  Random rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::string sql = "select ";
    sql += rng.Bernoulli(0.3) ? "*" : "a, b";
    sql += " from t";
    if (rng.Bernoulli(0.7)) {
      sql += " where c LexEQUAL 'x'";
      if (rng.Bernoulli(0.5)) sql += " Threshold 0.3";
      if (rng.Bernoulli(0.5)) sql += " Cost 0.25";
      if (rng.Bernoulli(0.5)) sql += " inlanguages { English, * }";
    }
    if (rng.Bernoulli(0.3)) sql += " USING qgram";
    if (rng.Bernoulli(0.3)) sql += " LIMIT 5";
    Result<SelectStatement> r = Parse(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
  }
}

TEST(SqlFuzzTest, ExecutorRejectsGarbageGracefully) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "lexequal_sqlfuzz.db")
          .string();
  std::filesystem::remove(path);
  auto db = engine::Engine::Open(path, 64);
  ASSERT_TRUE(db.ok());
  engine::Schema schema({{"a", engine::ValueType::kString, std::nullopt}});
  ASSERT_TRUE((*db)->CreateTable("t", schema).ok());
  engine::Session session = (*db)->CreateSession();

  Random rng(99);
  const char* vocab[] = {
      "SELECT", "FROM", "WHERE", "a", "t", "nope", "LexEQUAL",
      "'x'",    "=",    "<>",    ",", "*", "USING", "phonetic",
  };
  int executed = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    std::string input;
    const size_t len = 1 + rng.Uniform(12);
    for (size_t i = 0; i < len; ++i) {
      input += vocab[rng.Uniform(std::size(vocab))];
      input += ' ';
    }
    Result<QueryResult> r = ExecuteQuery(&session, input);
    if (r.ok()) ++executed;  // fine; must simply not crash
  }
  // Some token soup will be valid ("SELECT a FROM t"); most is not.
  EXPECT_LT(executed, 1000);
  db->reset();
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace lexequal::sql
