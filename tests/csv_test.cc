#include "engine/csv.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "engine/session.h"
#include "text/utf8.h"

namespace lexequal::engine {
namespace {

using text::Language;

TEST(CsvLineTest, SimpleFields) {
  Result<std::vector<std::string>> f = ParseCsvLine("a,b,c");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ParseCsvLine("").value(), std::vector<std::string>{""});
  EXPECT_EQ(ParseCsvLine("a,,c").value(),
            (std::vector<std::string>{"a", "", "c"}));
}

TEST(CsvLineTest, QuotedFields) {
  Result<std::vector<std::string>> f =
      ParseCsvLine("\"a,b\",\"say \"\"hi\"\"\",plain");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(*f, (std::vector<std::string>{"a,b", "say \"hi\"", "plain"}));
}

TEST(CsvLineTest, Errors) {
  EXPECT_FALSE(ParseCsvLine("\"unterminated").ok());
  EXPECT_FALSE(ParseCsvLine("ab\"cd").ok());
}

TEST(CsvLineTest, QuoteRoundTrip) {
  for (const char* s :
       {"plain", "with,comma", "with \"quotes\"", "", "नेहरु@Hindi"}) {
    std::string quoted = QuoteCsvField(s);
    Result<std::vector<std::string>> f = ParseCsvLine(quoted);
    ASSERT_TRUE(f.ok()) << s;
    ASSERT_EQ(f->size(), 1u);
    EXPECT_EQ((*f)[0], s);
  }
}

class CsvIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path();
    db_path_ = dir_ / ("lexequal_csv_" +
                       std::to_string(reinterpret_cast<uintptr_t>(this)) +
                       ".db");
    csv_path_ = dir_ / ("lexequal_csv_" +
                        std::to_string(reinterpret_cast<uintptr_t>(this)) +
                        ".csv");
    std::filesystem::remove(db_path_);
    std::filesystem::remove(csv_path_);
    auto db = Engine::Open(db_path_.string(), 256);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    Schema schema({
        {"author", ValueType::kString, std::nullopt},
        {"author_phon", ValueType::kString, 0},
        {"price", ValueType::kDouble, std::nullopt},
    });
    ASSERT_TRUE(db_->CreateTable("books", schema).ok());
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove(db_path_);
    std::filesystem::remove(csv_path_);
  }

  std::filesystem::path dir_;
  std::filesystem::path db_path_;
  std::filesystem::path csv_path_;
  std::unique_ptr<Engine> db_;
};

TEST_F(CsvIoTest, ImportWithLanguageTagsAndDetection) {
  {
    std::ofstream out(csv_path_);
    out << "author,price\n";
    out << "Nehru,9.95\n";                       // Latin: auto-English
    out << text::EncodeUtf8({0x0928, 0x0947, 0x0939, 0x0930, 0x0941})
        << "@Hindi,175\n";                       // explicit tag
    out << text::EncodeUtf8({0x0BA8, 0x0BC7, 0x0BB0, 0x0BC1})
        << ",250\n";                             // Tamil: auto-detected
    out << "BadRow\n";                           // wrong arity
    out << "Okay,notanumber\n";                  // bad double
  }
  Result<CsvImportResult> r =
      ImportCsv(db_.get(), "books", csv_path_.string());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows_inserted, 3u);
  EXPECT_EQ(r->rows_rejected, 2u);

  // Imported rows are LexEQUAL-queryable (phonemes derived on insert).
  Session session = db_->CreateSession();
  LexEqualQueryOptions options;
  options.match.threshold = 0.3;
  options.match.intra_cluster_cost = 0.25;
  QueryRequest req = QueryRequest::ThresholdSelect(
      "books", "author", text::TaggedString("Nehru", Language::kEnglish));
  req.options = options;
  Result<QueryResult> result = session.Execute(req);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 3u);
}

TEST_F(CsvIoTest, ExportImportRoundTrip) {
  Tuple v1{Value::String("Nehru", Language::kEnglish),
           Value::Double(9.95)};
  Tuple v2{Value::String(
               text::EncodeUtf8({0x0928, 0x0947, 0x0939, 0x0930, 0x0941}),
               Language::kHindi),
           Value::Double(175)};
  ASSERT_TRUE(db_->Insert("books", v1).ok());
  ASSERT_TRUE(db_->Insert("books", v2).ok());
  ASSERT_TRUE(ExportCsv(db_.get(), "books", csv_path_.string()).ok());

  // Import into a second table with the same shape.
  Schema schema({
      {"author", ValueType::kString, std::nullopt},
      {"author_phon", ValueType::kString, 0},
      {"price", ValueType::kDouble, std::nullopt},
  });
  ASSERT_TRUE(db_->CreateTable("books2", schema).ok());
  // The export includes the derived phonemic column; re-importing maps
  // file columns onto *user* columns, so strip it via a projection
  // file instead: simplest is to verify the export content itself.
  std::ifstream in(csv_path_);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "author,author_phon,price");
  std::string line1;
  std::getline(in, line1);
  EXPECT_NE(line1.find("Nehru@English"), std::string::npos);
  std::string line2;
  std::getline(in, line2);
  EXPECT_NE(line2.find("@Hindi"), std::string::npos);
}

TEST_F(CsvIoTest, ImportMissingFileFails) {
  EXPECT_TRUE(ImportCsv(db_.get(), "books", "/nonexistent/x.csv")
                  .status()
                  .IsIOError());
  EXPECT_TRUE(ImportCsv(db_.get(), "nope", csv_path_.string())
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace lexequal::engine
