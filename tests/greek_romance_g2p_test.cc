#include <gtest/gtest.h>

#include "g2p/greek_g2p.h"
#include "g2p/romance_g2p.h"
#include "text/utf8.h"

namespace lexequal::g2p {
namespace {

using text::EncodeUtf8;

class GreekG2PTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    greek_ = GreekG2P::Create().value().release();
  }
  static std::string Ipa(const std::vector<uint32_t>& cps) {
    Result<phonetic::PhonemeString> ps = greek_->ToPhonemes(EncodeUtf8(cps));
    EXPECT_TRUE(ps.ok()) << ps.status();
    return ps.ok() ? ps.value().ToIpa() : "<error>";
  }
  static GreekG2P* greek_;
};

GreekG2P* GreekG2PTest::greek_ = nullptr;

TEST_F(GreekG2PTest, PaperNameNearu) {
  // Νεερου: the Greek spelling of Nehru used in the paper's Fig. 2
  // (Νερου here): ν ε ρ ο υ -> n e r u.
  std::string ipa = Ipa({0x039D, 0x03B5, 0x03C1, 0x03BF, 0x03C5});
  EXPECT_EQ(ipa, "nɛru");
}

TEST_F(GreekG2PTest, Digraphs) {
  // ου -> u, αι -> e, ει -> i.
  EXPECT_EQ(Ipa({0x03BF, 0x03C5}), "u");
  EXPECT_EQ(Ipa({0x03B1, 0x03B9}), "e");
  EXPECT_EQ(Ipa({0x03B5, 0x03B9}), "i");
}

TEST_F(GreekG2PTest, VoicedStopsViaDigraphs) {
  // μπ -> b, ντ -> d, γκ -> g (initial).
  EXPECT_EQ(Ipa({0x03BC, 0x03C0, 0x03BF}), "bo");
  EXPECT_EQ(Ipa({0x03BD, 0x03C4, 0x03BF}), "do");
  EXPECT_EQ(Ipa({0x03B3, 0x03BA, 0x03BF}), "ɡo");
}

TEST_F(GreekG2PTest, AvEfAlternation) {
  // αυ before voiced -> av; before voiceless -> af.
  std::string avra = Ipa({0x03B1, 0x03C5, 0x03C1, 0x03B1});
  EXPECT_NE(avra.find("v"), std::string::npos);
  std::string afti = Ipa({0x03B1, 0x03C5, 0x03C4, 0x03B9});
  EXPECT_NE(afti.find("f"), std::string::npos);
}

TEST_F(GreekG2PTest, AccentsFold) {
  // ά folds to α.
  EXPECT_EQ(Ipa({0x03AC}), Ipa({0x03B1}));
  // Final sigma ς = σ.
  EXPECT_EQ(Ipa({0x03C2}), Ipa({0x03C3}));
  // Uppercase folds.
  EXPECT_EQ(Ipa({0x0391}), Ipa({0x03B1}));
}

TEST_F(GreekG2PTest, SarriExample) {
  // Σαρρη (paper Figure 1) -> s a r r i (double rho stays doubled in
  // phonemes; matching tolerates it).
  std::string ipa =
      Ipa({0x03A3, 0x03B1, 0x03C1, 0x03C1, 0x03B7});
  EXPECT_EQ(ipa.substr(0, 2), "sa");
  EXPECT_EQ(ipa.back(), 'i');
}

TEST_F(GreekG2PTest, RejectsNonGreek) {
  EXPECT_FALSE(greek_->ToPhonemes("abc").ok());
}

class RomanceG2PTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    french_ = FrenchG2P::Create().value().release();
    spanish_ = SpanishG2P::Create().value().release();
  }
  static std::string Fr(std::string_view s) {
    Result<phonetic::PhonemeString> ps = french_->ToPhonemes(s);
    EXPECT_TRUE(ps.ok()) << s << ": " << ps.status();
    return ps.ok() ? ps.value().ToIpa() : "<error>";
  }
  static std::string Es(std::string_view s) {
    Result<phonetic::PhonemeString> ps = spanish_->ToPhonemes(s);
    EXPECT_TRUE(ps.ok()) << s << ": " << ps.status();
    return ps.ok() ? ps.value().ToIpa() : "<error>";
  }
  static FrenchG2P* french_;
  static SpanishG2P* spanish_;
};

FrenchG2P* RomanceG2PTest::french_ = nullptr;
SpanishG2P* RomanceG2PTest::spanish_ = nullptr;

TEST_F(RomanceG2PTest, FrenchEcole) {
  // École (paper Figure 9: eikøl): accents handled, ch/ou digraphs.
  std::string ipa = Fr("École");
  EXPECT_EQ(ipa[0], 'e');
  EXPECT_NE(ipa.find("k"), std::string::npos);
  EXPECT_NE(ipa.find("l"), std::string::npos);
}

TEST_F(RomanceG2PTest, FrenchBasics) {
  EXPECT_EQ(Fr("ou"), "u");
  EXPECT_EQ(Fr("chou"), "ʃu");
  EXPECT_EQ(Fr("Jean"), "ʒɑn");
  EXPECT_EQ(Fr("René"), "rəne");
  // h silent, final consonants silent after vowels.
  EXPECT_EQ(Fr("Hugo"), Fr("ugo"));
}

TEST_F(RomanceG2PTest, FrenchFinalConsonantsSilent) {
  std::string ipa = Fr("Descartes");
  // Final s silent; the word must not end in s.
  EXPECT_NE(ipa.back(), 's');
}

TEST_F(RomanceG2PTest, SpanishBasics) {
  // Jesus: the paper's language-dependent vocalization example —
  // Spanish j -> x ("Hesus").
  std::string ipa = Es("Jesus");
  EXPECT_EQ(ipa.substr(0, 1), "x");
  EXPECT_EQ(Es("llama").substr(0, 1), "j");
  EXPECT_NE(Es("España").find("ɲ"), std::string::npos);
  EXPECT_EQ(Es("Vega")[0], 'b');  // v -> b
  EXPECT_EQ(Es("quinto").substr(0, 2), "ki");
}

TEST_F(RomanceG2PTest, SpanishSeseo) {
  // z and soft c -> s.
  EXPECT_EQ(Es("Cruz").back(), 's');
  EXPECT_EQ(Es("Cecilia")[0], 's');
}

TEST_F(RomanceG2PTest, LanguageDependentVocalization) {
  // Same spelling, different phonemes per language (paper §2.1).
  EXPECT_NE(Es("Jesus"), Fr("Jesus"));
}

}  // namespace
}  // namespace lexequal::g2p
