// Catalog + data persistence: a flushed database reopens with its
// tables, rows, and index access paths intact.

#include <gtest/gtest.h>

#include <filesystem>

#include "engine/session.h"
#include "text/utf8.h"

namespace lexequal::engine {
namespace {

using text::Language;
using text::TaggedString;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_persist_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  static LexEqualQueryOptions Options(LexEqualPlan plan) {
    LexEqualQueryOptions o;
    o.match.threshold = 0.3;
    o.match.intra_cluster_cost = 0.25;
    o.hints.plan = plan;
    return o;
  }

  // WHERE author LexEQUAL Nehru through a one-off session.
  static Result<QueryResult> SelectNehru(Engine* db, LexEqualPlan plan) {
    Session session = db->CreateSession();
    QueryRequest req = QueryRequest::ThresholdSelect(
        "books", "author", TaggedString("Nehru", Language::kEnglish));
    req.options = Options(plan);
    return session.Execute(req);
  }

  void PopulateBooks(Engine* db) {
    Schema schema({
        {"author", ValueType::kString, std::nullopt},
        {"author_phon", ValueType::kString, 0},
        {"title", ValueType::kString, std::nullopt},
    });
    ASSERT_TRUE(db->CreateTable("books", schema).ok());
    auto add = [&](const std::string& author, Language lang,
                   const char* title) {
      Tuple values{Value::String(author, lang),
                   Value::String(title, Language::kEnglish)};
      ASSERT_TRUE(db->Insert("books", values).ok());
    };
    add("Nehru", Language::kEnglish, "Discovery of India");
    add(text::EncodeUtf8({0x0928, 0x0947, 0x0939, 0x0930, 0x0941}),
        Language::kHindi, "Bharat Ek Khoj");
    add("Smith", Language::kEnglish, "A Book");
  }

  std::filesystem::path path_;
};

TEST_F(PersistenceTest, TablesAndRowsSurviveReopen) {
  {
    auto db = Engine::Open(path_.string(), 256);
    ASSERT_TRUE(db.ok());
    PopulateBooks(db->get());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  auto db = Engine::Open(path_.string(), 256);
  ASSERT_TRUE(db.ok()) << db.status();
  Result<TableInfo*> info = (*db)->GetTable("books");
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info.value()->schema.size(), 3u);
  EXPECT_EQ(info.value()->heap->record_count(), 3u);
  // The derived-column metadata survives.
  EXPECT_TRUE(
      info.value()->schema.column(1).phonemic_source.has_value());

  Result<QueryResult> result =
      SelectNehru(db->get(), LexEqualPlan::kNaiveUdf);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 2u);  // En + Hi
}

TEST_F(PersistenceTest, IndexesSurviveReopen) {
  {
    auto db = Engine::Open(path_.string(), 256);
    ASSERT_TRUE(db.ok());
    PopulateBooks(db->get());
    ASSERT_TRUE((*db)->CreateIndex({.kind = IndexSpec::Kind::kQGram,
                      .table = "books",
                      .column = "author_phon",
                      .q = 2}).ok());
    ASSERT_TRUE((*db)->CreateIndex({.kind = IndexSpec::Kind::kPhonetic,
                      .table = "books",
                      .column = "author_phon"}).ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  auto db = Engine::Open(path_.string(), 256);
  ASSERT_TRUE(db.ok()) << db.status();
  TableInfo* info = (*db)->GetTable("books").value();
  ASSERT_NE(info->phonetic_index, nullptr);
  ASSERT_NE(info->qgram_index, nullptr);
  EXPECT_EQ(info->qgram_index->q, 2);

  for (LexEqualPlan plan :
       {LexEqualPlan::kQGramFilter, LexEqualPlan::kPhoneticIndex}) {
    Result<QueryResult> result = SelectNehru(db->get(), plan);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_GE(result->rows.size(), 1u);
  }
}

TEST_F(PersistenceTest, InsertsAfterReopenAreIndexed) {
  {
    auto db = Engine::Open(path_.string(), 256);
    ASSERT_TRUE(db.ok());
    PopulateBooks(db->get());
    ASSERT_TRUE((*db)->CreateIndex({.kind = IndexSpec::Kind::kPhonetic,
                      .table = "books",
                      .column = "author_phon"}).ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  {
    auto db = Engine::Open(path_.string(), 256);
    ASSERT_TRUE(db.ok());
    Tuple values{
        Value::String(text::EncodeUtf8({0x0BA8, 0x0BC7, 0x0BB0, 0x0BC1}),
                      Language::kTamil),
        Value::String("Asia Jothi", Language::kEnglish)};
    ASSERT_TRUE((*db)->Insert("books", values).ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  auto db = Engine::Open(path_.string(), 256);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->GetTable("books").value()->heap->record_count(), 4u);
  Result<QueryResult> result =
      SelectNehru(db->get(), LexEqualPlan::kPhoneticIndex);
  ASSERT_TRUE(result.ok());
  // The post-reopen Tamil row is visible through the index.
  bool found_tamil = false;
  for (const Tuple& row : result->rows) {
    found_tamil =
        found_tamil || row[0].AsString().language() == Language::kTamil;
  }
  EXPECT_TRUE(found_tamil);
}

TEST_F(PersistenceTest, DestructorCheckpoints) {
  {
    auto db = Engine::Open(path_.string(), 256);
    ASSERT_TRUE(db.ok());
    PopulateBooks(db->get());
    // No explicit Flush: the destructor checkpoints best-effort.
  }
  auto db = Engine::Open(path_.string(), 256);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE((*db)->GetTable("books").ok());
}

TEST_F(PersistenceTest, EmptyDatabaseReopens) {
  {
    auto db = Engine::Open(path_.string(), 64);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  auto db = Engine::Open(path_.string(), 64);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_FALSE((*db)->GetTable("books").ok());
}

TEST_F(PersistenceTest, RepeatedFlushesKeepLatestSnapshot) {
  {
    auto db = Engine::Open(path_.string(), 256);
    ASSERT_TRUE(db.ok());
    PopulateBooks(db->get());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*db)->Flush().ok());
    }
    ASSERT_TRUE((*db)->CreateIndex({.kind = IndexSpec::Kind::kPhonetic,
                      .table = "books",
                      .column = "author_phon"}).ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  auto db = Engine::Open(path_.string(), 256);
  ASSERT_TRUE(db.ok()) << db.status();
  // The latest snapshot (with the index) wins.
  EXPECT_NE((*db)->GetTable("books").value()->phonetic_index, nullptr);
}

}  // namespace
}  // namespace lexequal::engine
