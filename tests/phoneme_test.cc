#include "phonetic/phoneme.h"

#include <gtest/gtest.h>

#include <set>

#include "phonetic/phoneme_string.h"
#include "text/utf8.h"

namespace lexequal::phonetic {
namespace {

TEST(PhonemeTest, InventoryIsWellFormed) {
  std::set<std::string> spellings;
  for (int i = 0; i < kPhonemeCount; ++i) {
    Phoneme p = static_cast<Phoneme>(i);
    const PhonemeInfo& info = GetPhonemeInfo(p);
    ASSERT_NE(info.ipa, nullptr);
    EXPECT_GT(std::string_view(info.ipa).size(), 0u);
    // No duplicate spellings: parsing must be unambiguous.
    EXPECT_TRUE(spellings.insert(info.ipa).second)
        << "duplicate IPA spelling " << info.ipa;
    // Vowels carry vowel features, consonants carry a place.
    if (info.type == PhonemeType::kVowel) {
      EXPECT_NE(info.height, Height::kNA) << info.ipa;
      EXPECT_NE(info.backness, Backness::kNA) << info.ipa;
      EXPECT_EQ(info.place, Place::kNone) << info.ipa;
    } else {
      EXPECT_NE(info.place, Place::kNone) << info.ipa;
      EXPECT_EQ(info.height, Height::kNA) << info.ipa;
    }
  }
}

TEST(PhonemeTest, IsVowelMatchesType) {
  EXPECT_TRUE(IsVowel(Phoneme::kA));
  EXPECT_TRUE(IsVowel(Phoneme::kSchwa));
  EXPECT_FALSE(IsVowel(Phoneme::kK));
  EXPECT_FALSE(IsVowel(Phoneme::kM));
}

TEST(PhonemeTest, ParseSingle) {
  std::vector<uint32_t> cps = text::DecodeUtf8("n");
  size_t pos = 0;
  Result<Phoneme> p = ParsePhonemeAt(cps, &pos);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value(), Phoneme::kN);
  EXPECT_EQ(pos, 1u);
}

TEST(PhonemeTest, ParseGreedyLongestMatch) {
  // tʃʰ must parse as the aspirated affricate, not t + ʃ + modifier.
  std::vector<uint32_t> cps = text::DecodeUtf8("tʃʰa");
  size_t pos = 0;
  Result<Phoneme> p = ParsePhonemeAt(cps, &pos);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value(), Phoneme::kChh);
  EXPECT_EQ(pos, 3u);
}

TEST(PhonemeTest, ParseUnknownFails) {
  std::vector<uint32_t> cps = {0x4E00};  // CJK ideograph
  size_t pos = 0;
  EXPECT_TRUE(ParsePhonemeAt(cps, &pos).status().IsNotFound());
  EXPECT_EQ(pos, 0u);
}

TEST(PhonemeStringTest, EveryPhonemeRoundTripsThroughIpa) {
  for (int i = 0; i < kPhonemeCount; ++i) {
    Phoneme p = static_cast<Phoneme>(i);
    PhonemeString ps({p});
    Result<PhonemeString> back = PhonemeString::FromIpa(ps.ToIpa());
    ASSERT_TRUE(back.ok()) << PhonemeIpa(p);
    ASSERT_EQ(back.value().size(), 1u) << PhonemeIpa(p);
    EXPECT_EQ(back.value()[0], p) << PhonemeIpa(p);
  }
}

TEST(PhonemeStringTest, SequenceRoundTrip) {
  // "nɛhru"-like sequence.
  PhonemeString ps(
      {Phoneme::kN, Phoneme::kEh, Phoneme::kH, Phoneme::kR, Phoneme::kU});
  Result<PhonemeString> back = PhonemeString::FromIpa(ps.ToIpa());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), ps);
}

TEST(PhonemeStringTest, SkipsSuprasegmentals) {
  // Stress and length marks (paper: stripped before matching).
  Result<PhonemeString> ps = PhonemeString::FromIpa("ˈneːru");
  ASSERT_TRUE(ps.ok());
  ASSERT_EQ(ps.value().size(), 4u);
  EXPECT_EQ(ps.value()[0], Phoneme::kN);
  EXPECT_EQ(ps.value()[1], Phoneme::kE);
}

TEST(PhonemeStringTest, RejectsUnknownCodePoints) {
  Result<PhonemeString> ps = PhonemeString::FromIpa("ne7ru");
  EXPECT_FALSE(ps.ok());
  EXPECT_TRUE(ps.status().IsInvalidArgument());
}

TEST(PhonemeStringTest, EmptyString) {
  Result<PhonemeString> ps = PhonemeString::FromIpa("");
  ASSERT_TRUE(ps.ok());
  EXPECT_TRUE(ps.value().empty());
  EXPECT_EQ(ps.value().ToIpa(), "");
}

TEST(PhonemeTest, DescribePhoneme) {
  EXPECT_EQ(DescribePhoneme(Phoneme::kP), "voiceless bilabial plosive");
  EXPECT_EQ(DescribePhoneme(Phoneme::kBh),
            "voiced aspirated bilabial plosive");
  EXPECT_EQ(DescribePhoneme(Phoneme::kI), "close front vowel");
  EXPECT_EQ(DescribePhoneme(Phoneme::kU), "close back rounded vowel");
  EXPECT_EQ(DescribePhoneme(Phoneme::kNg), "voiced velar nasal");
  EXPECT_EQ(DescribePhoneme(Phoneme::kRz),
            "voiced retroflex rhotic");
  // Every phoneme has a non-empty description ending in its manner.
  for (int i = 0; i < kPhonemeCount; ++i) {
    EXPECT_FALSE(DescribePhoneme(static_cast<Phoneme>(i)).empty());
  }
}

TEST(PhonemeStringTest, AppendConcatenates) {
  PhonemeString a({Phoneme::kN, Phoneme::kE});
  PhonemeString b({Phoneme::kR, Phoneme::kU});
  a.Append(b);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a.ToIpa(), "neru");
}

}  // namespace
}  // namespace lexequal::phonetic
