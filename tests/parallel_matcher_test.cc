#include "match/parallel_matcher.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dataset/lexicon.h"
#include "match/lexequal.h"
#include "match/match_stats.h"
#include "match/phoneme_cache.h"
#include "phonetic/phoneme_string.h"

namespace lexequal::match {
namespace {

using dataset::GenerateConcatenatedDataset;
using dataset::Lexicon;
using dataset::LexiconEntry;
using phonetic::PhonemeString;

// The serial reference the determinism contract is stated against.
std::vector<size_t> SerialReference(
    const LexEqualMatcher& matcher, const PhonemeString& query,
    const std::vector<PhonemeString>& candidates) {
  std::vector<size_t> out;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!candidates[i].empty() &&
        matcher.MatchPhonemes(query, candidates[i])) {
      out.push_back(i);
    }
  }
  return out;
}

class ParallelMatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Lexicon> lexicon = Lexicon::BuildTrilingual();
    ASSERT_TRUE(lexicon.ok());
    // ~5k-row enlarged lexicon (paper §5 concatenation scheme).
    std::vector<LexiconEntry> rows =
        GenerateConcatenatedDataset(lexicon.value(), 5000);
    ASSERT_GE(rows.size(), 5000u);
    for (const LexiconEntry& e : rows) {
      candidates_.push_back(e.phonemes);
      ipa_.push_back(e.phonemes.ToIpa());
    }
    // Probe with a stored phoneme string so matches are guaranteed.
    query_ = rows[7].phonemes;
  }

  std::vector<PhonemeString> candidates_;
  std::vector<std::string> ipa_;
  PhonemeString query_;
};

TEST_F(ParallelMatcherTest, MatchesSerialAcrossThreadCounts) {
  LexEqualMatcher matcher;
  const std::vector<size_t> expected =
      SerialReference(matcher, query_, candidates_);
  ASSERT_FALSE(expected.empty());

  for (uint32_t threads : {1u, 2u, 8u}) {
    ParallelMatcherOptions options;
    options.threads = threads;
    options.min_parallel_batch = 1;  // force the pool even at 5k rows
    ParallelMatcher pm(matcher, options);
    MatchStats stats;
    Result<std::vector<size_t>> got =
        pm.MatchBatch(query_, candidates_, &stats);
    ASSERT_TRUE(got.ok()) << "threads=" << threads;
    EXPECT_EQ(got.value(), expected) << "threads=" << threads;
    EXPECT_EQ(stats.tuples_scanned, candidates_.size());
    EXPECT_EQ(stats.matches, expected.size());
    EXPECT_EQ(stats.threads_used, pm.EffectiveThreads(candidates_.size()));
    // Every tuple is either filtered or DP-verified.
    EXPECT_EQ(stats.filter_rejections + stats.dp_evaluations,
              stats.tuples_scanned);
  }
}

TEST_F(ParallelMatcherTest, MatchesSerialUnderLevenshteinCosts) {
  // Levenshtein configuration turns the count filter on (every unit
  // edit costs 1); the result must still equal the serial loop.
  LexEqualOptions opt;
  opt.intra_cluster_cost = 1.0;
  opt.weak_phoneme_discount = false;
  LexEqualMatcher matcher(opt);
  const std::vector<size_t> expected =
      SerialReference(matcher, query_, candidates_);

  for (uint32_t threads : {1u, 2u, 8u}) {
    ParallelMatcherOptions options;
    options.threads = threads;
    options.min_parallel_batch = 1;
    ParallelMatcher pm(matcher, options);
    Result<std::vector<size_t>> got =
        pm.MatchBatch(query_, candidates_, nullptr);
    ASSERT_TRUE(got.ok()) << "threads=" << threads;
    EXPECT_EQ(got.value(), expected) << "threads=" << threads;
  }
}

TEST_F(ParallelMatcherTest, FiltersDisabledStillMatchesSerial) {
  LexEqualMatcher matcher;
  const std::vector<size_t> expected =
      SerialReference(matcher, query_, candidates_);

  ParallelMatcherOptions options;
  options.threads = 4;
  options.min_parallel_batch = 1;
  options.filter_q = 0;  // count filter off; length filter remains
  ParallelMatcher pm(matcher, options);
  Result<std::vector<size_t>> got =
      pm.MatchBatch(query_, candidates_, nullptr);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), expected);
}

TEST_F(ParallelMatcherTest, IpaEntryPointMatchesParsedEntryPoint) {
  LexEqualMatcher matcher;
  const std::vector<size_t> expected =
      SerialReference(matcher, query_, candidates_);

  PhonemeCache cache;
  for (uint32_t threads : {1u, 2u, 8u}) {
    ParallelMatcherOptions options;
    options.threads = threads;
    options.min_parallel_batch = 1;
    options.cache = &cache;
    ParallelMatcher pm(matcher, options);
    MatchStats stats;
    Result<std::vector<size_t>> got =
        pm.MatchBatchIpa(query_, ipa_, &stats);
    ASSERT_TRUE(got.ok()) << "threads=" << threads;
    EXPECT_EQ(got.value(), expected) << "threads=" << threads;
  }
  // After the first pass warmed the cache, later passes hit it.
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST_F(ParallelMatcherTest, IpaEntryPointWorksWithoutCache) {
  LexEqualMatcher matcher;
  const std::vector<size_t> expected =
      SerialReference(matcher, query_, candidates_);

  ParallelMatcherOptions options;
  options.threads = 2;
  options.min_parallel_batch = 1;
  options.cache = nullptr;
  ParallelMatcher pm(matcher, options);
  MatchStats stats;
  Result<std::vector<size_t>> got = pm.MatchBatchIpa(query_, ipa_, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), expected);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 0u);
}

TEST_F(ParallelMatcherTest, EmptyAndTinyBatches) {
  LexEqualMatcher matcher;
  ParallelMatcher pm(matcher, {.threads = 8, .min_parallel_batch = 1});

  Result<std::vector<size_t>> none =
      pm.MatchBatch(query_, std::vector<PhonemeString>{}, nullptr);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());

  // Batch smaller than the thread count: chunking must not break.
  std::vector<PhonemeString> three(candidates_.begin(),
                                   candidates_.begin() + 3);
  MatchStats stats;
  Result<std::vector<size_t>> got = pm.MatchBatch(query_, three, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), SerialReference(matcher, query_, three));
  EXPECT_EQ(stats.tuples_scanned, 3u);
}

TEST_F(ParallelMatcherTest, SharedKernelAcrossWorkersCountsEveryPair) {
  // All workers verify through the matcher's one shared MatchKernel,
  // each on a private DpArena; the per-worker kernel counters must
  // add up to exactly the DP-verified pairs, with the results still
  // serial-identical.
  LexEqualMatcher matcher;
  const std::vector<size_t> expected =
      SerialReference(matcher, query_, candidates_);

  ParallelMatcher pm(matcher, {.threads = 4, .min_parallel_batch = 1});
  MatchStats stats;
  Result<std::vector<size_t>> got =
      pm.MatchBatch(query_, candidates_, &stats);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), expected);
  EXPECT_EQ(stats.threads_used, 4u);
  // Every DP-verified pair was decided by exactly one kernel path.
  EXPECT_EQ(stats.kernel_bitparallel + stats.kernel_simd +
                stats.kernel_banded + stats.kernel_general,
            stats.dp_evaluations);
  EXPECT_GT(stats.dp_evaluations, 0u);
  // Default clustered costs are weighted: the SIMD lane path decides
  // them when the batch is wide enough (the scalar-emulation backend
  // makes that true on every host), banded otherwise.
  EXPECT_GT(stats.kernel_simd + stats.kernel_banded, 0u);
  EXPECT_GT(stats.dp_cells + stats.simd_cells, 0u);
}

TEST_F(ParallelMatcherTest, AutoThreadSelectionIsBounded) {
  LexEqualMatcher matcher;
  ParallelMatcher pm(matcher);  // threads = 0 (auto)
  const uint32_t t = pm.EffectiveThreads(1 << 20);
  EXPECT_GE(t, 1u);
  EXPECT_LE(t, ParallelMatcherOptions::kMaxAutoThreads);
  // Small batches stay inline regardless of the configured pool.
  EXPECT_EQ(pm.EffectiveThreads(16), 1u);
}

}  // namespace
}  // namespace lexequal::match
