#include "g2p/english_g2p.h"

#include <gtest/gtest.h>

namespace lexequal::g2p {
namespace {

class EnglishG2PTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Result<std::unique_ptr<EnglishG2P>> r = EnglishG2P::Create();
    ASSERT_TRUE(r.ok()) << r.status();
    converter_ = r.value().release();
  }
  static std::string Ipa(std::string_view word) {
    Result<phonetic::PhonemeString> ps = converter_->ToPhonemes(word);
    EXPECT_TRUE(ps.ok()) << word << ": " << ps.status();
    return ps.ok() ? ps.value().ToIpa() : "<error>";
  }
  static EnglishG2P* converter_;
};

EnglishG2P* EnglishG2PTest::converter_ = nullptr;

TEST_F(EnglishG2PTest, SimpleNames) {
  EXPECT_EQ(Ipa("Nehru"), "nɛhru");
  EXPECT_EQ(Ipa("Rama"), "ramə");
  EXPECT_EQ(Ipa("Bob"), "bɑb");
  EXPECT_EQ(Ipa("Lee"), "li");
}

TEST_F(EnglishG2PTest, SilentLetters) {
  EXPECT_EQ(Ipa("Knight"), "naɪt");
  EXPECT_EQ(Ipa("Wright"), "raɪt");
  EXPECT_EQ(Ipa("Mike"), "maɪk");    // silent final e
  EXPECT_EQ(Ipa("Singh"), "sɪŋ");    // gh silent after n
}

TEST_F(EnglishG2PTest, Digraphs) {
  EXPECT_EQ(Ipa("Sharma"), "ʃɑrmə");
  EXPECT_EQ(Ipa("Chand"), "tʃand");
  EXPECT_EQ(Ipa("Philip"), "fɪlɪp");
  EXPECT_EQ(Ipa("Smith"), "smɪθ");
  EXPECT_EQ(Ipa("Jack"), "dʒak");
}

TEST_F(EnglishG2PTest, CContexts) {
  // c is soft before front vowels, hard otherwise.
  EXPECT_EQ(Ipa("Cecil")[0], 's');
  std::string carl = Ipa("Carl");
  EXPECT_EQ(carl[0], 'k');
}

TEST_F(EnglishG2PTest, CaseAndAccentsFold) {
  EXPECT_EQ(Ipa("NEHRU"), Ipa("nehru"));
  EXPECT_EQ(Ipa("René"), Ipa("Rene"));
}

TEST_F(EnglishG2PTest, NonLettersSkipped) {
  EXPECT_EQ(Ipa("O'Brien"), Ipa("OBrien"));
  EXPECT_EQ(Ipa("Mary-Ann"), Ipa("MaryAnn"));
}

TEST_F(EnglishG2PTest, Deterministic) {
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(Ipa("Jawaharlal"), Ipa("Jawaharlal"));
  }
}

TEST_F(EnglishG2PTest, PaperExampleUniversity) {
  // Figure 9 shows "University" as junəv3rsīti; modulo the stressed
  // vowel variants our output keeps the shape j-u-n-v-r-s-t.
  std::string ipa = Ipa("University");
  EXPECT_EQ(ipa.substr(0, 2), "ju");  // j + u, initial
  EXPECT_NE(ipa.find("v"), std::string::npos);
  EXPECT_NE(ipa.find("s"), std::string::npos);
  EXPECT_NE(ipa.find("t"), std::string::npos);
}

TEST_F(EnglishG2PTest, EveryLetterHasADefault) {
  // Pangram-ish garbage must not error: the table is total.
  EXPECT_NE(Ipa("zyxwvutsrqponmlkjihgfedcba"), "<error>");
  EXPECT_NE(Ipa("qqq"), "<error>");
}

TEST_F(EnglishG2PTest, EmptyInput) {
  Result<phonetic::PhonemeString> ps = converter_->ToPhonemes("");
  ASSERT_TRUE(ps.ok());
  EXPECT_TRUE(ps.value().empty());
}

}  // namespace
}  // namespace lexequal::g2p
