#include "engine/value.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "text/utf8.h"

namespace lexequal::engine {
namespace {

TEST(ValueTest, FactoryAndAccessors) {
  Value i = Value::Int64(-7);
  EXPECT_EQ(i.type(), ValueType::kInt64);
  EXPECT_EQ(i.AsInt64(), -7);

  Value d = Value::Double(2.5);
  EXPECT_EQ(d.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 2.5);

  Value s = Value::String("नेहरु", text::Language::kHindi);
  EXPECT_EQ(s.type(), ValueType::kString);
  EXPECT_EQ(s.AsString().text(), "नेहरु");
  EXPECT_EQ(s.AsString().language(), text::Language::kHindi);
}

TEST(ValueTest, DisplayStrings) {
  EXPECT_EQ(Value::Int64(42).ToDisplayString(), "42");
  EXPECT_EQ(Value::String("x").ToDisplayString(), "x");
  // Doubles drop useless trailing zeros but keep one decimal.
  std::string d = Value::Double(9.95).ToDisplayString();
  EXPECT_EQ(d.substr(0, 4), "9.95");
  EXPECT_EQ(Value::Double(5).ToDisplayString().substr(0, 3), "5.0");
}

TEST(ValueTest, EqualityIsTypeAware) {
  EXPECT_EQ(Value::Int64(1), Value::Int64(1));
  EXPECT_FALSE(Value::Int64(1) == Value::Double(1.0));
  EXPECT_FALSE(Value::Int64(1) == Value::String("1"));
  // Strings compare language-sensitively (SQL:1999 collation-binary).
  EXPECT_FALSE(Value::String("x", text::Language::kEnglish) ==
               Value::String("x", text::Language::kFrench));
  EXPECT_EQ(Value::String("x", text::Language::kEnglish),
            Value::String("x", text::Language::kEnglish));
}

TEST(ValueTest, TypeNames) {
  EXPECT_EQ(ValueTypeName(ValueType::kInt64), "INT64");
  EXPECT_EQ(ValueTypeName(ValueType::kDouble), "DOUBLE");
  EXPECT_EQ(ValueTypeName(ValueType::kString), "STRING");
}

TEST(SchemaTest, IndexOfAndUserColumns) {
  Schema schema({
      {"a", ValueType::kString, std::nullopt},
      {"a_phon", ValueType::kString, 0},
      {"b", ValueType::kInt64, std::nullopt},
  });
  EXPECT_EQ(schema.IndexOf("a").value(), 0u);
  EXPECT_EQ(schema.IndexOf("b").value(), 2u);
  EXPECT_TRUE(schema.IndexOf("nope").status().IsNotFound());
  EXPECT_EQ(schema.UserColumnCount(), 2u);  // derived column excluded
  EXPECT_EQ(schema.size(), 3u);
}

TEST(TupleSerializationTest, RandomizedRoundTripProperty) {
  Random rng(20260706);
  for (int trial = 0; trial < 500; ++trial) {
    Tuple t;
    const size_t n = rng.Uniform(6);
    for (size_t i = 0; i < n; ++i) {
      switch (rng.Uniform(3)) {
        case 0:
          t.push_back(Value::Int64(static_cast<int64_t>(rng.Next())));
          break;
        case 1:
          t.push_back(Value::Double(rng.NextDouble() * 1e6 - 5e5));
          break;
        default: {
          std::string s;
          const size_t len = rng.Uniform(20);
          for (size_t k = 0; k < len; ++k) {
            // Mix ASCII and multibyte.
            if (rng.Bernoulli(0.3)) {
              text::AppendUtf8(0x0900 + rng.Uniform(0x7F), &s);
            } else {
              s.push_back(static_cast<char>('a' + rng.Uniform(26)));
            }
          }
          t.push_back(Value::String(
              std::move(s),
              static_cast<text::Language>(rng.Uniform(10))));
        }
      }
    }
    Result<Tuple> back = DeserializeTuple(SerializeTuple(t));
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back->size(), t.size());
    for (size_t i = 0; i < t.size(); ++i) {
      EXPECT_EQ((*back)[i], t[i]) << "trial " << trial << " cell " << i;
    }
  }
}

TEST(TupleSerializationTest, TruncationAtEveryByteIsSafe) {
  // Corruption robustness: no prefix of a valid encoding may crash,
  // and every strict prefix must fail to parse as the full tuple.
  Tuple t{Value::Int64(7), Value::String("नेहरु", text::Language::kHindi),
          Value::Double(1.5)};
  const std::string bytes = SerializeTuple(t);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Result<Tuple> r = DeserializeTuple(bytes.substr(0, cut));
    EXPECT_FALSE(r.ok() && r->size() == t.size() && (*r)[2] == t[2])
        << "cut " << cut;
  }
}

}  // namespace
}  // namespace lexequal::engine
