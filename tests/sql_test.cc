#include <gtest/gtest.h>

#include <filesystem>
#include <optional>

#include "engine/session.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "text/utf8.h"

namespace lexequal::sql {
namespace {

using engine::Engine;
using engine::Schema;
using engine::Session;
using engine::Tuple;
using engine::Value;
using engine::ValueType;
using text::Language;

// --- Lexer / parser unit tests ---

TEST(LexerTest, TokenKinds) {
  Result<std::vector<Token>> toks =
      Tokenize("SELECT Author, Title FROM Books WHERE Price = 9.95;");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*toks)[1].text, "Author");
  // 9.95 lexes as a number.
  bool found_number = false;
  for (const Token& t : *toks) {
    if (t.type == TokenType::kNumber) {
      EXPECT_DOUBLE_EQ(t.number, 9.95);
      found_number = true;
    }
  }
  EXPECT_TRUE(found_number);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  Result<std::vector<Token>> toks = Tokenize("'O''Brien' 'नेहरु'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "O'Brien");
  EXPECT_EQ((*toks)[1].text, "नेहरु");
}

TEST(LexerTest, Errors) {
  EXPECT_TRUE(Tokenize("'unterminated").status().IsInvalidArgument());
  EXPECT_TRUE(Tokenize("SELECT @").status().IsInvalidArgument());
}

TEST(ParserTest, Figure3Query) {
  // The paper's Fig. 3 syntax, verbatim modulo whitespace.
  Result<SelectStatement> stmt = Parse(
      "select Author, Title from Books "
      "where Author LexEQUAL 'Nehru' Threshold 0.25 "
      "inlanguages { English, Hindi, Tamil, Greek }");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->tables.size(), 1u);
  EXPECT_EQ(stmt->tables[0].table, "Books");
  ASSERT_EQ(stmt->predicates.size(), 1u);
  const Predicate& p = stmt->predicates[0];
  EXPECT_EQ(p.kind, PredicateKind::kLexEqualLiteral);
  EXPECT_EQ(p.string_literal, "Nehru");
  ASSERT_TRUE(p.threshold.has_value());
  EXPECT_DOUBLE_EQ(*p.threshold, 0.25);
  EXPECT_EQ(p.in_languages.size(), 4u);
}

TEST(ParserTest, Figure5JoinQuery) {
  Result<SelectStatement> stmt = Parse(
      "select B1.Author from Books B1, Books B2 "
      "where B1.Author LexEQUAL B2.Author Threshold 0.25 "
      "and B1.Language <> B2.Language");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->tables.size(), 2u);
  EXPECT_EQ(stmt->tables[0].alias, "B1");
  ASSERT_EQ(stmt->predicates.size(), 2u);
  EXPECT_EQ(stmt->predicates[0].kind, PredicateKind::kLexEqualColumn);
  EXPECT_EQ(stmt->predicates[1].kind, PredicateKind::kNotEqualsColumn);
}

TEST(ParserTest, WildcardLanguagesAndHints) {
  Result<SelectStatement> stmt = Parse(
      "SELECT * FROM t WHERE c LexEQUAL 'x' inlanguages { * } "
      "USING qgram LIMIT 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_TRUE(stmt->select_star);
  EXPECT_EQ(stmt->plan_hint, "qgram");
  ASSERT_TRUE(stmt->limit.has_value());
  EXPECT_EQ(*stmt->limit, 10u);
  EXPECT_EQ(stmt->predicates[0].in_languages,
            std::vector<std::string>{"*"});
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT a b c").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE a LIKE 'x'").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t extra junk").ok());
  EXPECT_TRUE(Parse("SELECT a FROM t1, t2, t3 WHERE a = b")
                  .status()
                  .IsNotSupported());
}

TEST(ParserTest, UsingAutoHint) {
  Result<SelectStatement> stmt =
      Parse("select a from t where a LexEQUAL 'x' USING auto");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->plan_hint, "auto");
}

TEST(ParserTest, AnalyzeStatement) {
  Result<Statement> stmt = ParseStatement("analyze Books;");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, StatementKind::kAnalyze);
  EXPECT_EQ(stmt->analyze.table, "Books");

  stmt = ParseStatement("ANALYZE");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, StatementKind::kAnalyze);
  EXPECT_TRUE(stmt->analyze.table.empty());  // = all tables
}

TEST(ParserTest, ExplainStatements) {
  Result<Statement> stmt = ParseStatement(
      "explain select a from t where a LexEQUAL 'x' Threshold 0.3");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, StatementKind::kExplain);
  EXPECT_FALSE(stmt->explain_analyze);
  EXPECT_EQ(stmt->select.tables[0].table, "t");

  stmt = ParseStatement(
      "EXPLAIN ANALYZE select a from t where a LexEQUAL 'x'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, StatementKind::kExplain);
  EXPECT_TRUE(stmt->explain_analyze);

  // EXPLAIN needs a SELECT behind it.
  EXPECT_FALSE(ParseStatement("explain analyze Books").ok());
}

TEST(ParserTest, CreateIndexStatement) {
  Result<Statement> stmt = ParseStatement(
      "create index phonetic on Books (Author_phon)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, StatementKind::kCreateIndex);
  EXPECT_EQ(stmt->create_index.kind, "phonetic");
  EXPECT_EQ(stmt->create_index.table, "Books");
  EXPECT_EQ(stmt->create_index.column, "Author_phon");
  EXPECT_FALSE(stmt->create_index.q.has_value());

  stmt = ParseStatement("CREATE INDEX qgram ON t (c) Q 3;");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->create_index.kind, "qgram");
  ASSERT_TRUE(stmt->create_index.q.has_value());
  EXPECT_EQ(*stmt->create_index.q, 3);

  EXPECT_FALSE(ParseStatement("create index btree on t (c)").ok());
  EXPECT_FALSE(ParseStatement("create index qgram on t c").ok());
  EXPECT_FALSE(ParseStatement("create index qgram on t (c) Q").ok());
}

TEST(ParserTest, ParseStatementStillAcceptsPlainSelect) {
  Result<Statement> stmt =
      ParseStatement("select a from t where a LexEQUAL 'x'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->kind, StatementKind::kSelect);
  EXPECT_EQ(stmt->select.predicates.size(), 1u);
}

// --- End-to-end planner tests over the Books.com data ---

class SqlEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("lexequal_sql_test_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db");
    std::filesystem::remove(path_);
    auto db = Engine::Open(path_.string(), 512);
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    session_.emplace(db_->CreateSession());
    Schema schema({
        {"author", ValueType::kString, std::nullopt},
        {"author_phon", ValueType::kString, 0},
        {"title", ValueType::kString, std::nullopt},
        {"price", ValueType::kDouble, std::nullopt},
    });
    ASSERT_TRUE(db_->CreateTable("books", schema).ok());
    auto add = [&](const std::string& author, Language lang,
                   const std::string& title, double price) {
      Tuple values{Value::String(author, lang),
                   Value::String(title, Language::kEnglish),
                   Value::Double(price)};
      ASSERT_TRUE(db_->Insert("books", values).ok());
    };
    add("Nehru", Language::kEnglish, "Discovery of India", 9.95);
    add(text::EncodeUtf8({0x0928, 0x0947, 0x0939, 0x0930, 0x0941}),
        Language::kHindi, "Bharat Ek Khoj", 175);
    add(text::EncodeUtf8({0x0BA8, 0x0BC7, 0x0BB0, 0x0BC1}),
        Language::kTamil, "Asia Jothi", 250);
    add("Nero", Language::kEnglish, "Coronation", 99);
    add("Smith", Language::kEnglish, "A Book", 5);
    ASSERT_TRUE(db_->CreateIndex({.kind = engine::IndexSpec::Kind::kQGram,
                      .table = "books",
                      .column = "author_phon",
                      .q = 2}).ok());
    ASSERT_TRUE(db_->CreateIndex({.kind = engine::IndexSpec::Kind::kPhonetic,
                      .table = "books",
                      .column = "author_phon"}).ok());
  }
  void TearDown() override {
    session_.reset();
    db_.reset();
    std::filesystem::remove(path_);
  }

  Result<QueryResult> Exec(const std::string& sql) {
    return ExecuteQuery(&*session_, sql);
  }

  std::filesystem::path path_;
  std::unique_ptr<Engine> db_;
  std::optional<Session> session_;
};

TEST_F(SqlEndToEndTest, Figure3SelectReturnsThreeScripts) {
  Result<QueryResult> result = Exec("select author, title, price from books "
      "where author LexEQUAL 'Nehru' Threshold 0.3 Cost 0.25 "
      "inlanguages { English, Hindi, Tamil } USING naive");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->column_names,
            (std::vector<std::string>{"author", "title", "price"}));
}

TEST_F(SqlEndToEndTest, PlanHintsAllWork) {
  for (const char* hint : {"naive", "qgram", "phonetic"}) {
    Result<QueryResult> result = Exec(std::string("select author from books where author "
                               "LexEQUAL 'Nehru' Threshold 0.3 Cost "
                               "0.25 USING ") +
                       hint);
    ASSERT_TRUE(result.ok()) << hint << ": " << result.status();
    EXPECT_GE(result->rows.size(), 1u) << hint;
  }
}

TEST_F(SqlEndToEndTest, ExactEqualityIsBinary) {
  Result<QueryResult> result = Exec("select author from books where author = 'Nehru'");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 1u);
}

TEST_F(SqlEndToEndTest, ResidualPredicateCombines) {
  Result<QueryResult> result = Exec("select author, title from books "
      "where author LexEQUAL 'Nehru' Threshold 0.3 Cost 0.25 "
      "and title = 'Discovery of India' USING naive");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 1u);
}

TEST_F(SqlEndToEndTest, Figure5JoinExecutes) {
  Result<QueryResult> result = Exec("select B1.author, B2.author from books B1, books B2 "
      "where B1.author LexEQUAL B2.author Threshold 0.3 Cost 0.25 "
      "and B1.language <> B2.language USING naive");
  ASSERT_TRUE(result.ok()) << result.status();
  // Nehru En/Hi/Ta -> 6 ordered cross-language pairs.
  EXPECT_EQ(result->rows.size(), 6u);
  EXPECT_EQ(result->column_names[0], "B1.author");
}

TEST_F(SqlEndToEndTest, OrderBySortsResults) {
  Result<QueryResult> asc = Exec("select author, price from books ORDER BY price ASC");
  ASSERT_TRUE(asc.ok()) << asc.status();
  ASSERT_EQ(asc->rows.size(), 5u);
  for (size_t i = 1; i < asc->rows.size(); ++i) {
    EXPECT_LE((*asc).rows[i - 1][1].AsDouble(),
              (*asc).rows[i][1].AsDouble());
  }
  Result<QueryResult> desc = Exec("select author, price from books ORDER BY price DESC LIMIT 2");
  ASSERT_TRUE(desc.ok()) << desc.status();
  ASSERT_EQ(desc->rows.size(), 2u);
  EXPECT_GE((*desc).rows[0][1].AsDouble(),
            (*desc).rows[1][1].AsDouble());
  // Limit applies after the sort: these are the two priciest books.
  EXPECT_DOUBLE_EQ((*desc).rows[0][1].AsDouble(), 250);
}

TEST_F(SqlEndToEndTest, OrderByWithLexEqual) {
  Result<QueryResult> result = Exec("select author, price from books "
      "where author LexEQUAL 'Nehru' Threshold 0.3 Cost 0.25 "
      "ORDER BY price DESC USING naive");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_DOUBLE_EQ(result->rows[0][1].AsDouble(), 250);
}

TEST_F(SqlEndToEndTest, OrderByUnknownColumnFails) {
  EXPECT_TRUE(Exec("select author from books ORDER BY price")
                  .status()
                  .IsNotFound());
}

TEST_F(SqlEndToEndTest, SelectStarAndLimit) {
  Result<QueryResult> result = Exec("select * from books LIMIT 2");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->column_names.size(), 4u);  // all columns
}

TEST_F(SqlEndToEndTest, ToTableRendersAligned) {
  Result<QueryResult> result = Exec("select author, price from books where author = 'Nehru'");
  ASSERT_TRUE(result.ok());
  std::string table = result->ToTable();
  EXPECT_NE(table.find("author"), std::string::npos);
  EXPECT_NE(table.find("Nehru"), std::string::npos);
  EXPECT_NE(table.find("9.95"), std::string::npos);
}

TEST_F(SqlEndToEndTest, UnknownEntitiesError) {
  EXPECT_TRUE(Exec("select a from nope")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(Exec("select nope from books")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(
      Exec("select author from books where author LexEQUAL "
                   "'x' USING turbo")
          .status()
          .IsInvalidArgument());
}

TEST_F(SqlEndToEndTest, UnsupportedJoinPredicates) {
  EXPECT_TRUE(Exec("select B1.author from books B1, books B2 "
                           "where B1.title <> B2.title")
                  .status()
                  .IsNotSupported());
}

// --- ORDER BY lexsim(...) LIMIT k — ranked retrieval ----------------

TEST(ParserTest, OrderByLexsimParses) {
  Result<SelectStatement> stmt = Parse(
      "select author from books "
      "order by lexsim(author, 'Nehru') DESC limit 3");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_TRUE(stmt->lexsim_order.has_value());
  EXPECT_EQ(stmt->lexsim_order->column.column, "author");
  EXPECT_EQ(stmt->lexsim_order->query, "Nehru");
  EXPECT_FALSE(stmt->order_by.has_value());
  EXPECT_EQ(stmt->limit, 3u);
}

TEST(ParserTest, OrderByLexsimRejectsAscAndNonLiterals) {
  EXPECT_FALSE(Parse("select a from t "
                     "order by lexsim(a, 'x') ASC limit 3")
                   .ok());
  EXPECT_FALSE(Parse("select a from t order by lexsim(a, b) limit 3")
                   .ok());
  EXPECT_FALSE(Parse("select a from t order by lexsim(a 'x') limit 3")
                   .ok());
}

TEST(ParserTest, LexsimColumnNameStillUsable) {
  // Only `lexsim(` after ORDER BY is ranked retrieval; a plain column
  // that happens to be named lexsim sorts normally.
  Result<SelectStatement> stmt =
      Parse("select lexsim from t order by lexsim desc");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_FALSE(stmt->lexsim_order.has_value());
  ASSERT_TRUE(stmt->order_by.has_value());
  EXPECT_EQ(stmt->order_by->column.column, "lexsim");
}

TEST(ParserTest, CreateIndexInvidxAndInvertedAlias) {
  for (const char* kind : {"invidx", "inverted"}) {
    Result<Statement> stmt = ParseStatement(
        std::string("create index ") + kind +
        " on books (author_phon) Q 3");
    ASSERT_TRUE(stmt.ok()) << kind << ": " << stmt.status();
    EXPECT_EQ(stmt->kind, StatementKind::kCreateIndex);
    EXPECT_EQ(stmt->create_index.kind, "invidx");
    EXPECT_EQ(stmt->create_index.q, 3);
  }
}

TEST_F(SqlEndToEndTest, OrderByLexsimRanksBestFirst) {
  Result<QueryResult> create = Exec("create index invidx on books (author_phon) Q 2");
  ASSERT_TRUE(create.ok()) << create.status();
  ASSERT_NE(db_->GetTable("books").value()->inverted_index, nullptr);

  Result<QueryResult> result = Exec("select author from books "
      "order by lexsim(author, 'Nehru') limit 3");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 3u);
  // The trailing score column is appended to the projection.
  ASSERT_EQ(result->column_names,
            (std::vector<std::string>{"author", "lexsim"}));
  double prev = 2.0;
  for (const auto& row : result->rows) {
    const double score = row[1].AsDouble();
    EXPECT_LE(score, prev);
    prev = score;
  }
  // The best-scoring rows are the Nehru spellings, not Smith.
  EXPECT_EQ(result->rows[0][0].AsString().text(), "Nehru");
}

TEST_F(SqlEndToEndTest, OrderByLexsimWorksWithoutIndexViaFallback) {
  QueryResult hinted;  // naive hint and index-free table agree
  {
    Result<QueryResult> result = Exec("select author from books "
        "order by lexsim(author, 'Nehru') USING naive limit 2");
    ASSERT_TRUE(result.ok()) << result.status();
    hinted = std::move(result).value();
  }
  ASSERT_EQ(hinted.rows.size(), 2u);
  EXPECT_EQ(hinted.rows[0][0].AsString().text(), "Nehru");
}

TEST_F(SqlEndToEndTest, OrderByLexsimRequiresLimitAndNoWhere) {
  EXPECT_TRUE(Exec("select author from books "
                           "order by lexsim(author, 'Nehru')")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Exec("select author from books "
                           "order by lexsim(author, 'Nehru') limit 0")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Exec("select author from books "
                           "where title = 'A Book' "
                           "order by lexsim(author, 'Nehru') limit 2")
                  .status()
                  .IsNotSupported());
}

}  // namespace
}  // namespace lexequal::sql
