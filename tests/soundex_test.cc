#include "phonetic/soundex.h"

#include <gtest/gtest.h>

namespace lexequal::phonetic {
namespace {

TEST(SoundexTest, KnuthReferenceExamples) {
  // The classic examples from TAOCP vol. 3.
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");
  EXPECT_EQ(Soundex("Ashcroft"), "A261");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Euler"), "E460");
  EXPECT_EQ(Soundex("Gauss"), "G200");
  EXPECT_EQ(Soundex("Knuth"), "K530");
}

TEST(SoundexTest, CaseInsensitive) {
  EXPECT_EQ(Soundex("NEHRU"), Soundex("nehru"));
  EXPECT_EQ(Soundex("Nehru"), "N600");
}

TEST(SoundexTest, IgnoresNonLetters) {
  EXPECT_EQ(Soundex("O'Brien"), Soundex("OBrien"));
  EXPECT_EQ(Soundex("Al-Qaeda"), Soundex("AlQaeda"));
}

TEST(SoundexTest, EmptyAndLetterless) {
  EXPECT_EQ(Soundex(""), "0000");
  EXPECT_EQ(Soundex("123"), "0000");
}

TEST(SoundexTest, PadsShortCodes) {
  EXPECT_EQ(Soundex("Lee"), "L000");
  EXPECT_EQ(Soundex("A"), "A000");
}

TEST(SoundexTest, SameInitialVariantsCollide) {
  EXPECT_TRUE(SoundexEqual("Smith", "Smyth"));
  EXPECT_TRUE(SoundexEqual("Meyer", "Meier"));
  EXPECT_FALSE(SoundexEqual("Cathy", "Nehru"));
}

TEST(SoundexTest, FirstLetterBlindSpot) {
  // Classic Soundex keeps the first *letter*, so Cathy/Kathy do NOT
  // collide — exactly the kind of miss that motivates matching in
  // phoneme space instead (paper §2.3, Cathy/Kathy example).
  EXPECT_FALSE(SoundexEqual("Cathy", "Kathy"));
  EXPECT_FALSE(SoundexEqual("Catherine", "Katherine"));
}

TEST(SoundexTest, DoubledLettersCollapse) {
  EXPECT_EQ(Soundex("Gutierrez"), Soundex("Gutierez"));
}

}  // namespace
}  // namespace lexequal::phonetic
