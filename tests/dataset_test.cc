#include <gtest/gtest.h>

#include <set>

#include "dataset/lexicon.h"
#include "dataset/metrics.h"
#include "text/utf8.h"

namespace lexequal::dataset {
namespace {

using text::Language;

const Lexicon& Lex() {
  static const Lexicon& lex = *new Lexicon(
      Lexicon::BuildTrilingual().value());
  return lex;
}

TEST(NamesTest, ThreeDomainsWithEnoughNames) {
  EXPECT_GT(BaseNames(NameDomain::kIndian).size(), 200u);
  EXPECT_GT(BaseNames(NameDomain::kAmerican).size(), 200u);
  EXPECT_GT(BaseNames(NameDomain::kGeneric).size(), 200u);
  // "Together the set yielded about 800 names in English."
  EXPECT_GT(AllBaseNames().size(), 650u);
  EXPECT_LT(AllBaseNames().size(), 900u);
}

TEST(LexiconTest, TrilingualEntriesPerGroup) {
  const Lexicon& lex = Lex();
  // Every base name yields three entries (En + Hi + Ta).
  EXPECT_EQ(lex.entries().size() % 3, 0u);
  EXPECT_GT(lex.group_count(), 600);
  // Group sizes sum to the entry count.
  uint64_t total = 0;
  for (int n : lex.group_sizes()) total += n;
  EXPECT_EQ(total, lex.entries().size());
}

TEST(LexiconTest, ScriptsAreCorrectPerLanguage) {
  for (const LexiconEntry& e : Lex().entries()) {
    switch (e.language) {
      case Language::kEnglish:
        EXPECT_EQ(text::DetectScript(e.text), text::Script::kLatin);
        break;
      case Language::kHindi:
        EXPECT_EQ(text::DetectScript(e.text), text::Script::kDevanagari);
        break;
      case Language::kTamil:
        EXPECT_EQ(text::DetectScript(e.text), text::Script::kTamil);
        break;
      default:
        FAIL() << "unexpected language";
    }
  }
}

TEST(LexiconTest, PhonemesNonEmptyAndDeterministic) {
  const Lexicon& a = Lex();
  Result<Lexicon> b = Lexicon::BuildTrilingual();
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.entries().size(), b->entries().size());
  for (size_t i = 0; i < a.entries().size(); ++i) {
    EXPECT_FALSE(a.entries()[i].phonemes.empty());
    EXPECT_EQ(a.entries()[i].text, b->entries()[i].text);
    EXPECT_EQ(a.entries()[i].phonemes, b->entries()[i].phonemes);
    EXPECT_EQ(a.entries()[i].tag, b->entries()[i].tag);
  }
}

TEST(LexiconTest, AverageLengthsNearPaper) {
  // Paper: average lexicographic length 7.35, phonemic 7.16. Our
  // name lists are slightly shorter; the same order of magnitude and
  // the text≈phoneme relationship must hold.
  const Lexicon& lex = Lex();
  EXPECT_GT(lex.AverageTextLength(), 4.0);
  EXPECT_LT(lex.AverageTextLength(), 9.0);
  EXPECT_GT(lex.AveragePhonemeLength(), 4.0);
  EXPECT_LT(lex.AveragePhonemeLength(), 9.0);
}

TEST(LexiconTest, SpellingVariantsShareTags) {
  const Lexicon& lex = Lex();
  int catherine_tag = -1;
  int katherine_tag = -2;
  for (const LexiconEntry& e : lex.entries()) {
    if (e.text == "Catherine") catherine_tag = e.tag;
    if (e.text == "Katherine") katherine_tag = e.tag;
  }
  EXPECT_EQ(catherine_tag, katherine_tag);
}

TEST(SyntheticTest, ConcatenatedDatasetSizeAndShape) {
  const Lexicon& lex = Lex();
  // Full size: sum over languages of n*(n-1); with ~722 per language
  // that is ~1.56M, the paper capped theirs at ~200k by using ~260
  // per language. We spot-check with a limit.
  std::vector<LexiconEntry> gen = GenerateConcatenatedDataset(lex, 5000);
  // The limit is approximate: the nearest 3*K*(K-1) at or above it.
  ASSERT_GE(gen.size(), 5000u);
  ASSERT_LT(gen.size(), 7000u);
  // Concatenations are roughly twice as long as base entries.
  double avg_len = 0;
  for (const LexiconEntry& e : gen) {
    avg_len += static_cast<double>(e.phonemes.size());
  }
  avg_len /= static_cast<double>(gen.size());
  EXPECT_GT(avg_len, 1.5 * lex.AveragePhonemeLength());
  // The limited subset spans all three languages (aligned prefixes).
  bool has_hindi = false;
  bool has_tamil = false;
  for (const LexiconEntry& e : gen) {
    has_hindi = has_hindi || e.language == Language::kHindi;
    has_tamil = has_tamil || e.language == Language::kTamil;
  }
  EXPECT_TRUE(has_hindi);
  EXPECT_TRUE(has_tamil);
}

TEST(SyntheticTest, EquivalentConcatenationsShareTags) {
  const Lexicon& lex = Lex();
  std::vector<LexiconEntry> gen = GenerateConcatenatedDataset(lex);
  // Find one English concat and its Hindi counterpart: same pair of
  // source tags -> same tag.
  std::multiset<int> en_tags;
  std::multiset<int> hi_tags;
  for (const LexiconEntry& e : gen) {
    if (e.language == Language::kEnglish) en_tags.insert(e.tag);
    if (e.language == Language::kHindi) hi_tags.insert(e.tag);
  }
  EXPECT_EQ(en_tags, hi_tags);  // same multiset of group ids per language
}

TEST(MetricsTest, PerfectMatcherOnIdenticalStrings) {
  // Threshold 0 still matches identical phoneme strings, so recall
  // is bounded below by the fraction of groups whose forms collapsed
  // to identical phonemes; precision stays near 1 at threshold 0.
  QualityResult r = EvaluateMatchQuality(
      Lex(), {.threshold = 0.0, .intra_cluster_cost = 1.0});
  EXPECT_GT(r.precision, 0.9);
  EXPECT_LT(r.recall, 0.7);
  // Size-3 groups contribute C(3,2)=3 each (= their entry count);
  // merged spelling-variant groups contribute more.
  EXPECT_GE(r.ideal_matches,
            static_cast<uint64_t>(Lex().entries().size()));
}

TEST(MetricsTest, PaperShapeRecallRisesPrecisionFalls) {
  QualityResult low = EvaluateMatchQuality(
      Lex(), {.threshold = 0.1, .intra_cluster_cost = 0.25});
  QualityResult mid = EvaluateMatchQuality(
      Lex(), {.threshold = 0.25, .intra_cluster_cost = 0.25});
  QualityResult high = EvaluateMatchQuality(
      Lex(), {.threshold = 0.5, .intra_cluster_cost = 0.25});
  EXPECT_LT(low.recall, mid.recall);
  EXPECT_LT(mid.recall, high.recall + 1e-9);
  EXPECT_GT(low.precision, mid.precision);
  EXPECT_GT(mid.precision, high.precision);
  // The paper's headline: good recall and precision simultaneously.
  QualityResult knee = EvaluateMatchQuality(
      Lex(), {.threshold = 0.2, .intra_cluster_cost = 0.25});
  EXPECT_GT(knee.recall, 0.9);
  EXPECT_GT(knee.precision, 0.7);
}

TEST(MetricsTest, IdealMatchesUsesGroupSizes) {
  // 3 per group (plus merged variants): sum C(n_i,2) >= 3 * groups.
  const Lexicon& lex = Lex();
  QualityResult r = EvaluateMatchQuality(
      lex, {.threshold = 0.0, .intra_cluster_cost = 1.0});
  EXPECT_GE(r.ideal_matches,
            static_cast<uint64_t>(lex.group_count()) * 3);
}

}  // namespace
}  // namespace lexequal::dataset
