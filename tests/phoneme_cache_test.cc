#include "match/phoneme_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "g2p/g2p.h"
#include "phonetic/phoneme_string.h"
#include "text/language.h"

namespace lexequal::match {
namespace {

using phonetic::PhonemeString;
using text::Language;

TEST(PhonemeCacheTest, MissThenHitReturnsSameTransform) {
  PhonemeCache cache;
  Result<PhonemeString> direct =
      g2p::G2PRegistry::Default().Transform("Nehru", Language::kEnglish);
  ASSERT_TRUE(direct.ok());

  Result<PhonemeString> first = cache.Transform("Nehru",
                                                Language::kEnglish);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), direct.value());
  PhonemeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);

  Result<PhonemeString> second = cache.Transform("Nehru",
                                                 Language::kEnglish);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), direct.value());
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(PhonemeCacheTest, KeyIncludesLanguage) {
  PhonemeCache cache;
  // Same spelling through two converters must not collide.
  Result<PhonemeString> en = cache.Transform("chat", Language::kEnglish);
  Result<PhonemeString> fr = cache.Transform("chat", Language::kFrench);
  ASSERT_TRUE(en.ok());
  ASSERT_TRUE(fr.ok());
  // Two misses proves the (language, text) keys did not collide.
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(PhonemeCacheTest, NegativeCachingOfNoResource) {
  PhonemeCache cache;
  // kAny has no converter installed: NORESOURCE, memoized, so the
  // second probe is a hit that replays the failure.
  Result<PhonemeString> first = cache.Transform("abc", Language::kAny);
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.status().IsNoResource());
  Result<PhonemeString> second = cache.Transform("abc", Language::kAny);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsNoResource());
  PhonemeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(PhonemeCacheTest, ParseIpaRoundTripsAndCaches) {
  PhonemeCache cache;
  Result<PhonemeString> direct =
      g2p::G2PRegistry::Default().Transform("Krishna",
                                            Language::kEnglish);
  ASSERT_TRUE(direct.ok());
  const std::string ipa = direct.value().ToIpa();

  Result<PhonemeString> parsed = cache.ParseIpa(ipa);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), direct.value());
  EXPECT_EQ(cache.stats().misses, 1u);
  parsed = cache.ParseIpa(ipa);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), direct.value());
  EXPECT_EQ(cache.stats().hits, 1u);

  // The empty cell (untransformable row) bypasses the cache.
  Result<PhonemeString> empty = cache.ParseIpa("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PhonemeCacheTest, IpaAndG2PKeySpacesDoNotCollide) {
  PhonemeCache cache;
  // "nehru" as English text vs. "nehru" as an IPA string are
  // different conversions; both must be computed.
  Result<PhonemeString> text = cache.Transform("nehru",
                                               Language::kEnglish);
  ASSERT_TRUE(text.ok());
  Result<PhonemeString> ipa = cache.ParseIpa("nehru");
  ASSERT_TRUE(ipa.ok());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(PhonemeCacheTest, EvictsLeastRecentlyUsed) {
  // Tiny capacity: kShards entries total → 1 per shard. Inserting
  // many distinct keys must evict, keep entries bounded, and stay
  // correct (recompute on re-access).
  PhonemeCache cache(g2p::G2PRegistry::Default(), PhonemeCache::kShards);
  const int kKeys = 64;
  for (int i = 0; i < kKeys; ++i) {
    Result<PhonemeString> r =
        cache.Transform("name" + std::to_string(i), Language::kEnglish);
    ASSERT_TRUE(r.ok());
  }
  PhonemeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, static_cast<uint64_t>(kKeys));
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.entries, static_cast<uint64_t>(PhonemeCache::kShards));

  // Evicted keys recompute correctly (miss, not corruption).
  Result<PhonemeString> again = cache.Transform("name0",
                                                Language::kEnglish);
  ASSERT_TRUE(again.ok());
  Result<PhonemeString> direct =
      g2p::G2PRegistry::Default().Transform("name0", Language::kEnglish);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(again.value(), direct.value());
}

TEST(PhonemeCacheTest, ClearEmptiesButKeepsCounters) {
  PhonemeCache cache;
  ASSERT_TRUE(cache.Transform("Nehru", Language::kEnglish).ok());
  ASSERT_TRUE(cache.Transform("Nehru", Language::kEnglish).ok());
  cache.Clear();
  PhonemeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
  ASSERT_TRUE(cache.Transform("Nehru", Language::kEnglish).ok());
  EXPECT_EQ(cache.stats().misses, 2u);  // recomputed after Clear
}

TEST(PhonemeCacheTest, ConcurrentHammeringStaysConsistent) {
  // 8 threads × mixed hot/cold keys on a small cache: exercises hits,
  // misses, evictions, and the insert race under ThreadSanitizer.
  PhonemeCache cache(g2p::G2PRegistry::Default(), 128);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 500;

  // Reference values computed single-threaded.
  std::vector<std::string> keys;
  std::vector<PhonemeString> expected;
  for (int i = 0; i < 16; ++i) {
    keys.push_back("name" + std::to_string(i));
    Result<PhonemeString> r = g2p::G2PRegistry::Default().Transform(
        keys.back(), Language::kEnglish);
    ASSERT_TRUE(r.ok());
    expected.push_back(r.value());
  }

  std::atomic<int> wrong{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Hot keys repeat across threads; cold keys force eviction.
        const size_t k = (t + i) % keys.size();
        Result<PhonemeString> r =
            cache.Transform(keys[k], Language::kEnglish);
        if (!r.ok() || !(r.value() == expected[k])) ++wrong;
        if (i % 7 == 0) {
          Result<PhonemeString> cold = cache.Transform(
              "cold" + std::to_string(t) + "_" + std::to_string(i),
              Language::kEnglish);
          if (!cold.ok()) ++wrong;
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();

  EXPECT_EQ(wrong.load(), 0);
  PhonemeCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads * kOpsPerThread +
                                  kThreads * ((kOpsPerThread + 6) / 7)));
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);
}

}  // namespace
}  // namespace lexequal::match
