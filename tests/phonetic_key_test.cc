#include "phonetic/phonetic_key.h"

#include <gtest/gtest.h>

namespace lexequal::phonetic {
namespace {

using P = Phoneme;

const ClusterTable& T() { return ClusterTable::Default(); }

TEST(PhoneticKeyTest, EqualStringsEqualKeys) {
  PhonemeString a({P::kN, P::kE, P::kR, P::kU});
  PhonemeString b({P::kN, P::kE, P::kR, P::kU});
  EXPECT_EQ(GroupedPhonemeStringId(a, T()), GroupedPhonemeStringId(b, T()));
}

TEST(PhoneticKeyTest, IntraClusterSubstitutionsCollide) {
  // nɛru vs neru: ɛ and e share the front-vowel cluster.
  PhonemeString a({P::kN, P::kEh, P::kR, P::kU});
  PhonemeString b({P::kN, P::kE, P::kR, P::kU});
  EXPECT_EQ(GroupedPhonemeStringId(a, T()), GroupedPhonemeStringId(b, T()));
  // Aspiration collides too: pʰapa vs papa.
  PhonemeString c({P::kPh, P::kA, P::kP, P::kA});
  PhonemeString d({P::kP, P::kA, P::kP, P::kA});
  EXPECT_EQ(GroupedPhonemeStringId(c, T()), GroupedPhonemeStringId(d, T()));
}

TEST(PhoneticKeyTest, CrossClusterSubstitutionsSeparate) {
  PhonemeString a({P::kN, P::kE, P::kR, P::kU});
  PhonemeString b({P::kN, P::kE, P::kL, P::kU});  // r -> l
  EXPECT_NE(GroupedPhonemeStringId(a, T()), GroupedPhonemeStringId(b, T()));
}

TEST(PhoneticKeyTest, LengthMatters) {
  // A prefix must not collide with its extension (terminator nibble).
  PhonemeString a({P::kN, P::kE});
  PhonemeString b({P::kN, P::kE, P::kR});
  PhonemeString c({P::kN, P::kE, P::kR, P::kU});
  EXPECT_NE(GroupedPhonemeStringId(a, T()), GroupedPhonemeStringId(b, T()));
  EXPECT_NE(GroupedPhonemeStringId(b, T()), GroupedPhonemeStringId(c, T()));
}

TEST(PhoneticKeyTest, EmptyStringHasStableKey) {
  PhonemeString empty;
  EXPECT_EQ(GroupedPhonemeStringId(empty, T()), 0xFull);
}

TEST(PhoneticKeyTest, TruncationMergesOnlyLongStrings) {
  // Two strings identical in the first 15 phonemes collide even if
  // they diverge later (documented false-positive source).
  std::vector<Phoneme> base(15, P::kN);
  PhonemeString a(base);
  std::vector<Phoneme> longer = base;
  longer.push_back(P::kU);
  PhonemeString b(longer);
  EXPECT_EQ(GroupedPhonemeStringId(a, T()), GroupedPhonemeStringId(b, T()));
}

TEST(PhoneticKeyTest, DebugFormListsClusterIds) {
  PhonemeString a({P::kN, P::kE, P::kR, P::kU});
  std::string dbg = GroupedPhonemeStringIdDebug(a, T());
  EXPECT_EQ(dbg, "11.0.13.2");
}

}  // namespace
}  // namespace lexequal::phonetic
