// Command-line driver for lexlint. See lexlint.h for the rule
// catalog. Usage:
//
//   lexlint [--rule=r1,r2] [--root=DIR] [--export=FILE] <src-dir>
//
// Exit codes: 0 clean, 1 violations, 2 usage/I-O error.

#include <iostream>
#include <string>
#include <vector>

#include "tools/lexlint/lexlint.h"

namespace {

void Usage(std::ostream& out) {
  out << "usage: lexlint [--rule=r1,r2] [--root=DIR] [--export=FILE] "
         "<src-dir>\n"
         "rules:";
  for (const std::string& r : lexequal::lexlint::AllRules()) {
    out << " " << r;
  }
  out << "\n";
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    const size_t comma = s.find(',', pos);
    const std::string part =
        s.substr(pos, comma == std::string::npos ? std::string::npos
                                                 : comma - pos);
    if (!part.empty()) out.push_back(part);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  lexequal::lexlint::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rule=", 0) == 0) {
      for (std::string& r : SplitCommas(arg.substr(7))) {
        options.rules.push_back(std::move(r));
      }
    } else if (arg.rfind("--root=", 0) == 0) {
      options.root_dir = arg.substr(7);
    } else if (arg.rfind("--export=", 0) == 0) {
      options.export_file = arg.substr(9);
    } else if (arg == "--help" || arg == "-h") {
      Usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "lexlint: unknown flag: " << arg << "\n";
      Usage(std::cerr);
      return 2;
    } else if (options.src_dir.empty()) {
      options.src_dir = arg;
    } else {
      std::cerr << "lexlint: more than one source tree given\n";
      Usage(std::cerr);
      return 2;
    }
  }
  if (options.src_dir.empty() && options.export_file.empty()) {
    Usage(std::cerr);
    return 2;
  }
  if (options.src_dir.empty()) {
    // Export mode needs a root only if src checks also run; give the
    // validator something harmless to anchor on.
    options.src_dir = ".";
  }

  std::vector<lexequal::lexlint::Diagnostic> diags;
  const int rc = lexequal::lexlint::Run(options, &diags, std::cerr);
  for (const auto& d : diags) {
    std::cout << d.ToString() << "\n";
  }
  if (rc == 0) {
    std::cout << "lexlint: clean\n";
  } else if (rc == 1) {
    std::cout << "lexlint: " << diags.size() << " violation"
              << (diags.size() == 1 ? "" : "s") << "\n";
  }
  return rc;
}
