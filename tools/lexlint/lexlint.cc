#include "tools/lexlint/lexlint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace lexequal::lexlint {

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// The layer DAG. A file in layer L may include headers of L itself and
// of any layer in its set. Two stacks share the low layers: the text
// pipeline (text → phonetic → g2p → match) and the storage pipeline
// (storage → index → engine → sql); obs is a leaf everyone below the
// engine may use for counters, dataset is a consumer of the match
// stack. Adding a subsystem means adding a row here — an unknown
// directory is itself a violation, so layering can never silently rot.
const std::map<std::string, std::set<std::string>>& LayerDeps() {
  static const std::map<std::string, std::set<std::string>> kDeps = {
      {"common", {}},
      {"obs", {"common"}},
      {"text", {"common"}},
      {"phonetic", {"common", "text"}},
      {"g2p", {"common", "text", "phonetic"}},
      {"match", {"common", "obs", "text", "phonetic", "g2p"}},
      {"storage", {"common", "obs"}},
      {"index",
       {"common", "obs", "text", "phonetic", "g2p", "match", "storage"}},
      {"dataset", {"common", "obs", "text", "phonetic", "g2p", "match"}},
      {"engine",
       {"common", "obs", "text", "phonetic", "g2p", "match", "storage",
        "index"}},
      {"sql",
       {"common", "obs", "text", "phonetic", "g2p", "match", "storage",
        "index", "engine"}},
  };
  return kDeps;
}

// Files allowed to touch the raw pin/unpin API: the pool itself and
// the RAII guard that everyone else must go through.
bool BufpoolExempt(const std::string& module, const std::string& base) {
  if (module != "storage") return false;
  return base == "buffer_pool.h" || base == "buffer_pool.cc" ||
         base == "page_guard.h" || base == "page_guard.cc";
}

const std::regex& MetricNameRe() {
  static const std::regex re("^lexequal_[a-z0-9]+(_[a-z0-9]+)+$");
  return re;
}

// The declared metric subsystems: the <subsystem> of the
// lexequal_<subsystem>_<name> contract. A new subsystem means a row
// here — an undeclared one is a violation, so subsystem names cannot
// drift (lexequal_statement_* vs lexequal_stmt_*) without the lint
// noticing.
const std::set<std::string>& MetricSubsystems() {
  static const std::set<std::string> kSubsystems = {
      "query",  "match",    "qgram",   "phonetic", "invidx",
      "bufpool", "disk",    "heap",    "phoneme",  "g2p",
      "parallel", "stmt",   "slowlog",
  };
  return kSubsystems;
}

// Checks one metric name against the contract; returns the complaint
// or nullopt when the name is fine.
std::optional<std::string> MetricNameComplaint(const std::string& name) {
  if (!std::regex_match(name, MetricNameRe())) {
    return "bad metric name '" + name +
           "' (want lexequal_<subsystem>_<name> snake_case)";
  }
  const size_t start = std::string("lexequal_").size();
  const std::string subsystem =
      name.substr(start, name.find('_', start) - start);
  if (MetricSubsystems().count(subsystem) == 0) {
    std::string known;
    for (const std::string& s : MetricSubsystems()) {
      if (!known.empty()) known += ", ";
      known += s;
    }
    return "metric '" + name + "' uses undeclared subsystem '" +
           subsystem + "' (declared: " + known +
           "; add new subsystems to MetricSubsystems() in "
           "tools/lexlint/lexlint.cc)";
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Source loading: a file plus comment/literal-stripped views and its
// suppression table.

struct SourceFile {
  std::string display;  // path relative to the repo root
  std::string module;   // first directory under src/ ("" = unknown)
  std::string base;     // file name
  std::vector<std::string> lines;  // original, 0-based
  std::string code;  // comments blanked; literals + preprocessor kept
  std::string pure;  // comments, literals and preprocessor blanked
  // line (1-based) -> rules suppressed on that line
  std::map<int, std::set<std::string>> allow;
  // lines carrying a reasonless lexlint:allow marker
  std::vector<int> reasonless_allow;
};

// Blanks comments (and, for `pure`, string/char literal contents and
// preprocessor lines) while preserving the newline structure, so line
// numbers in the stripped views match the original.
void StripSource(const std::string& text, std::string* code,
                 std::string* pure) {
  enum class State { kCode, kLine, kBlock, kString, kChar };
  State state = State::kCode;
  code->assign(text);
  pure->assign(text);
  bool preproc = false;       // inside a preprocessor directive
  bool line_has_code = false;  // non-ws seen on this line (pre-'#')
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLine) state = State::kCode;
      if (preproc && (i == 0 || text[i - 1] != '\\')) preproc = false;
      line_has_code = false;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (preproc) {
          (*pure)[i] = ' ';
          break;
        }
        if (c == '#' && !line_has_code) {
          preproc = true;
          (*pure)[i] = ' ';
          break;
        }
        if (!std::isspace(static_cast<unsigned char>(c))) {
          line_has_code = true;
        }
        if (c == '/' && next == '/') {
          state = State::kLine;
          (*code)[i] = ' ';
          (*pure)[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          (*code)[i] = ' ';
          (*pure)[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        (*code)[i] = ' ';
        (*pure)[i] = ' ';
        break;
      case State::kBlock:
        (*code)[i] = ' ';
        (*pure)[i] = ' ';
        if (c == '*' && next == '/') {
          (*code)[i + 1] = ' ';
          (*pure)[i + 1] = ' ';
          ++i;
          state = State::kCode;
        }
        break;
      case State::kString:
        if (c == '\\') {
          (*pure)[i] = ' ';
          if (next != '\n' && next != '\0') (*pure)[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else {
          (*pure)[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          (*pure)[i] = ' ';
          if (next != '\n' && next != '\0') (*pure)[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          (*pure)[i] = ' ';
        }
        break;
    }
  }
}

std::string Trimmed(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

// Parses `lexlint:allow(<rule>): <reason>` markers. A marker on a
// line with code applies to that line; a marker alone on its line
// covers the following line.
void ScanSuppressions(SourceFile* file) {
  static const std::regex re(
      R"(lexlint:allow\(([a-z]+)\)(\s*:\s*(\S.*))?)");
  for (size_t i = 0; i < file->lines.size(); ++i) {
    const std::string& line = file->lines[i];
    std::smatch m;
    if (!std::regex_search(line, m, re)) continue;
    const int lineno = static_cast<int>(i) + 1;
    if (!m[3].matched) {
      file->reasonless_allow.push_back(lineno);
      continue;
    }
    const std::string before = Trimmed(line.substr(0, m.position(0)));
    const bool own_line = before == "//" || before == "*" || before.empty();
    const int target = own_line ? lineno + 1 : lineno;
    file->allow[target].insert(m[1].str());
  }
}

std::optional<SourceFile> LoadFile(const fs::path& path,
                                   const fs::path& root) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  SourceFile file;
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  file.display = ec ? path.string() : rel.generic_string();
  file.base = path.filename().string();
  // Module = first path component under .../src/.
  const std::string generic = path.generic_string();
  const size_t src_pos = generic.rfind("/src/");
  if (src_pos != std::string::npos) {
    const size_t start = src_pos + 5;
    const size_t slash = generic.find('/', start);
    if (slash != std::string::npos) {
      file.module = generic.substr(start, slash - start);
    }
  }
  std::string cur;
  for (const char c : text) {
    if (c == '\n') {
      file.lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) file.lines.push_back(std::move(cur));
  StripSource(text, &file.code, &file.pure);
  ScanSuppressions(&file);
  return file;
}

int LineOfOffset(const std::string& text, size_t offset) {
  return 1 + static_cast<int>(
                 std::count(text.begin(), text.begin() + offset, '\n'));
}

// ---------------------------------------------------------------------------
// Diagnostic sink with suppression handling.

class Sink {
 public:
  explicit Sink(std::vector<Diagnostic>* out) : out_(out) {}

  void Emit(const SourceFile& file, const std::string& rule, int line,
            std::string message) {
    auto it = file.allow.find(line);
    if (it != file.allow.end() && it->second.count(rule) > 0) return;
    out_->push_back({rule, file.display, line, std::move(message)});
  }

  void EmitRaw(const std::string& rule, const std::string& path, int line,
               std::string message) {
    out_->push_back({rule, path, line, std::move(message)});
  }

 private:
  std::vector<Diagnostic>* out_;
};

// ---------------------------------------------------------------------------
// Rule: layering.

void CheckLayering(const std::vector<SourceFile>& files, Sink* sink) {
  static const std::regex inc_re(
      R"(^[ \t]*#[ \t]*include[ \t]*"([^"]+)\")");
  const auto& deps = LayerDeps();
  for (const SourceFile& f : files) {
    if (f.module.empty()) continue;  // not under src/<module>/
    const auto self = deps.find(f.module);
    if (self == deps.end()) {
      sink->Emit(f, "layering", 1,
                 "directory 'src/" + f.module +
                     "' is not a declared layer; add it to the layer "
                     "DAG in tools/lexlint/lexlint.cc");
      continue;
    }
    std::istringstream code(f.code);
    std::string line;
    int lineno = 0;
    while (std::getline(code, line)) {
      ++lineno;
      std::smatch m;
      if (!std::regex_search(line, m, inc_re)) continue;
      const std::string target = m[1].str();
      const size_t slash = target.find('/');
      if (slash == std::string::npos) continue;  // non-module include
      const std::string mod = target.substr(0, slash);
      if (mod == f.module) continue;
      if (deps.find(mod) == deps.end()) continue;  // external tree
      if (self->second.count(mod) > 0) continue;
      sink->Emit(f, "layering", lineno,
                 "include of \"" + target + "\" from layer '" +
                     f.module + "' is a back-edge in the layer DAG ('" +
                     f.module + "' may depend on: " +
                     [&] {
                       std::string s;
                       for (const std::string& d : self->second) {
                         if (!s.empty()) s += ", ";
                         s += d;
                       }
                       return s.empty() ? std::string("nothing") : s;
                     }() +
                     ")");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: bufpool.

void CheckBufpool(const std::vector<SourceFile>& files, Sink* sink) {
  static const std::regex call_re(
      R"((FetchPage|NewPage|UnpinPage)[ \t]*\()");
  for (const SourceFile& f : files) {
    if (BufpoolExempt(f.module, f.base)) continue;
    for (auto it = std::sregex_iterator(f.pure.begin(), f.pure.end(),
                                        call_re);
         it != std::sregex_iterator(); ++it) {
      // Reject identifier-prefix matches (e.g. MyNewPage).
      const size_t pos = static_cast<size_t>(it->position(0));
      if (pos > 0) {
        const char prev = f.pure[pos - 1];
        if (std::isalnum(static_cast<unsigned char>(prev)) || prev == '_') {
          continue;
        }
      }
      sink->Emit(f, "bufpool", LineOfOffset(f.pure, pos),
                 "raw BufferPool::" + (*it)[1].str() +
                     " outside the pool/guard implementation; hold "
                     "pins through storage::PageGuard "
                     "(src/storage/page_guard.h)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: kernel.

// Modules allowed to call the reference edit-distance routines
// directly: the match library itself (kernel + differential
// harness), the BK-tree (whose metric must be the full distance, not
// a bounded decision), and dataset ground-truth computation. Engine
// and SQL execution paths must verify candidates through
// match::MatchKernel so they get the table-driven batch kernels.
bool KernelExempt(const std::string& module) {
  return module == "match" || module == "index" || module == "dataset";
}

// Only the dedicated SIMD backend files of the match library may use
// vendor intrinsics: everything else goes through the lane-kernel
// seam (src/match/simd_dp.h), so backend selection, the runtime cpuid
// gate, and the per-file -mavx2 island stay in one place. An
// <immintrin.h> include in an ordinary TU would quietly require AVX2
// of the whole binary once CMake's per-file flags spread.
bool KernelSimdExempt(const SourceFile& f) {
  return f.module == "match" && f.base.rfind("simd", 0) == 0;
}

void CheckKernelSimd(const std::vector<SourceFile>& files, Sink* sink) {
  // Vendor headers are preprocessor lines (blanked in `pure`), so
  // search the comment-stripped `code` view for them; the intrinsic
  // tokens themselves live in ordinary code.
  static const std::regex include_re(
      R"(#[ \t]*include[ \t]*[<"](immintrin\.h|arm_neon\.h)[>"])");
  // NEON names are verb + optional lane decorations + a mandatory
  // element-type suffix (_u8, _s16, _f32, ...); requiring the suffix
  // keeps lookalike identifiers (vmax_len) out of the net.
  static const std::regex intrin_re(
      R"((_mm(?:256|512)?_[A-Za-z0-9_]+|v(?:q)?(?:add|sub|min|max|ld1|st1|tbl|dup|cle|movl|maxv)[a-z0-9_]*_[uspf](?:8|16|32|64))[ \t]*\()");
  for (const SourceFile& f : files) {
    if (KernelSimdExempt(f)) continue;
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(),
                                        include_re);
         it != std::sregex_iterator(); ++it) {
      sink->Emit(f, "kernel",
                 LineOfOffset(f.code, static_cast<size_t>(it->position(0))),
                 "SIMD vendor header <" + (*it)[1].str() +
                     "> outside src/match/simd*; raw intrinsics belong "
                     "behind the lane-kernel seam (src/match/simd_dp.h)");
    }
    for (auto it = std::sregex_iterator(f.pure.begin(), f.pure.end(),
                                        intrin_re);
         it != std::sregex_iterator(); ++it) {
      const size_t pos = static_cast<size_t>(it->position(0));
      // Reject identifier-prefix matches (e.g. my_mm256_helper).
      if (pos > 0) {
        const char prev = f.pure[pos - 1];
        if (std::isalnum(static_cast<unsigned char>(prev)) || prev == '_') {
          continue;
        }
      }
      sink->Emit(f, "kernel", LineOfOffset(f.pure, pos),
                 "raw SIMD intrinsic " + (*it)[1].str() +
                     " outside src/match/simd*; use the lane-kernel "
                     "seam (src/match/simd_dp.h)");
    }
  }
}

void CheckKernel(const std::vector<SourceFile>& files, Sink* sink) {
  static const std::regex call_re(
      R"((BoundedEditDistance|EditDistance)[ \t]*\()");
  for (const SourceFile& f : files) {
    if (KernelExempt(f.module)) continue;
    for (auto it = std::sregex_iterator(f.pure.begin(), f.pure.end(),
                                        call_re);
         it != std::sregex_iterator(); ++it) {
      // Reject identifier-prefix matches (e.g. MyEditDistance).
      const size_t pos = static_cast<size_t>(it->position(0));
      if (pos > 0) {
        const char prev = f.pure[pos - 1];
        if (std::isalnum(static_cast<unsigned char>(prev)) || prev == '_') {
          continue;
        }
      }
      sink->Emit(f, "kernel", LineOfOffset(f.pure, pos),
                 "reference " + (*it)[1].str() +
                     " outside match/index/dataset; execution paths "
                     "must verify through match::MatchKernel "
                     "(src/match/match_kernel.h)");
    }
  }
  CheckKernelSimd(files, sink);
}

// ---------------------------------------------------------------------------
// Rule: latch.

// The engine's catalog-mutation funnels. Reaching one of these means
// mutating shared Engine state, which the latch discipline
// (src/engine/engine.h) only permits with the latch held — i.e. from
// inside a function whose name ends in "Locked".
bool IsStatementKeyword(const std::string& word);  // defined with the status rule

const std::regex& LatchFunnelRe() {
  static const std::regex re(
      R"((SaveCatalogLocked|LoadCatalogLocked|catalog_\s*\.\s*AddTable)\s*\()");
  return re;
}

// The record-after-release funnels: statement-stats and slow-query
// recording must happen strictly AFTER the engine latch drops, so the
// observability write never serializes the shared query path. Inside
// a *Locked function these calls are by-contract under the latch —
// the inverse of the funnel check above.
const std::regex& LatchRecordRe() {
  static const std::regex re(
      R"((stmt_stats_|slow_log_|stmt_stats\s*\(\s*\)|slow_query_log\s*\(\s*\))\s*(\.|->)\s*Record\s*\()");
  return re;
}

// The function name a brace-opening statement introduces: the first
// `name(` whose name is not a control keyword. Empty when the brace
// opens a namespace, class, lambda, or control block — those inherit
// the enclosing function.
std::string FunctionOpenerName(const std::string& stmt) {
  static const std::regex re(R"(([A-Za-z_]\w*)\s*\()");
  std::smatch m;
  if (!std::regex_search(stmt, m, re)) return "";
  const std::string name = m[1].str();
  return IsStatementKeyword(name) ? "" : name;
}

void CheckLatch(const std::vector<SourceFile>& files, Sink* sink) {
  // A flagged mention: a catalog-mutation funnel (must be inside a
  // *Locked function) or an observability Record call (must NOT be).
  struct Site {
    size_t pos;
    std::string name;
    bool record;  // true = record-after-release check
  };
  for (const SourceFile& f : files) {
    if (f.module != "engine") continue;

    // Funnel mention positions, in order. Declarations and qualified
    // definitions are filtered out below; calls remain.
    std::vector<Site> sites;
    for (auto it = std::sregex_iterator(f.pure.begin(), f.pure.end(),
                                        LatchFunnelRe());
         it != std::sregex_iterator(); ++it) {
      const size_t pos = static_cast<size_t>(it->position(0));
      size_t p = pos;
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(f.pure[p - 1]))) {
        --p;
      }
      if (p > 0) {
        const char prev = f.pure[p - 1];
        if (prev == ':') continue;  // Engine::SaveCatalogLocked() { — a defn
        if (prev == '>' && (p < 2 || f.pure[p - 2] != '-')) {
          continue;  // Result<T> InsertLocked( — a declaration
        }
        if (std::isalnum(static_cast<unsigned char>(prev)) || prev == '_') {
          // Preceded by a word: `return Save...` is a call, `Status
          // Save...` is a declaration.
          size_t b = p;
          while (b > 0 && (std::isalnum(static_cast<unsigned char>(
                               f.pure[b - 1])) ||
                           f.pure[b - 1] == '_')) {
            --b;
          }
          if (!IsStatementKeyword(f.pure.substr(b, p - b))) continue;
        }
      }
      sites.push_back({pos, (*it)[1].str(), false});
    }
    // Record-after-release sites: `stmt_stats_.Record(` and friends
    // are always calls (the member access rules them out as
    // declarations), so no filtering is needed.
    for (auto it = std::sregex_iterator(f.pure.begin(), f.pure.end(),
                                        LatchRecordRe());
         it != std::sregex_iterator(); ++it) {
      sites.push_back(
          {static_cast<size_t>(it->position(0)), (*it)[1].str(), true});
    }
    std::sort(sites.begin(), sites.end(),
              [](const Site& a, const Site& b) { return a.pos < b.pos; });
    if (sites.empty()) continue;

    // One pass over the stripped text, tracking the enclosing function
    // through a brace stack; check each funnel call as the scan
    // reaches it.
    std::vector<std::string> scopes;
    std::string stmt;
    size_t next = 0;
    for (size_t i = 0; i < f.pure.size() && next < sites.size(); ++i) {
      if (i == sites[next].pos) {
        const std::string fn = scopes.empty() ? "" : scopes.back();
        const bool held = fn.size() >= 6 &&
                          fn.compare(fn.size() - 6, 6, "Locked") == 0;
        if (sites[next].record) {
          if (held) {
            sink->Emit(f, "latch", LineOfOffset(f.pure, i),
                       "statement/slow-query recording via '" +
                           sites[next].name + "' inside '" + fn +
                           "', which holds the engine latch by "
                           "contract; record strictly after release "
                           "(record-after-release, "
                           "src/engine/session.h)");
          }
        } else if (!held) {
          std::string callee = sites[next].name;
          if (callee.find("AddTable") != std::string::npos) {
            callee = "catalog_.AddTable";
          }
          sink->Emit(f, "latch", LineOfOffset(f.pure, i),
                     "call to '" + callee + "' from '" +
                         (fn.empty() ? std::string("<file scope>") : fn) +
                         "', which does not hold the engine latch by "
                         "contract; funnel catalog mutations through a "
                         "*Locked method (latch discipline, "
                         "src/engine/engine.h)");
        }
        ++next;
      }
      const char c = f.pure[i];
      if (c == '{') {
        const std::string name = FunctionOpenerName(stmt);
        scopes.push_back(name.empty() && !scopes.empty() ? scopes.back()
                                                         : name);
        stmt.clear();
      } else if (c == '}') {
        if (!scopes.empty()) scopes.pop_back();
        stmt.clear();
      } else if (c == ';') {
        stmt.clear();
      } else {
        stmt.push_back(c);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: status.

// Harvests the names of functions returning Status or Result<T> from
// every declaration in the tree. Names also declared with a void
// return somewhere are dropped (same-name overloads would make the
// textual check ambiguous).
std::set<std::string> CollectFallibleNames(
    const std::vector<SourceFile>& files) {
  static const std::regex decl_re(
      R"((?:^|[\s;{}(])(?:(?:static|virtual|inline|constexpr|explicit|friend|\[\[nodiscard\]\])\s+)*(Status|Result\s*<[^;{}()]*>)\s+([A-Za-z_]\w*)\s*\()");
  static const std::regex void_re(
      R"((?:^|[\s;{}])void\s+([A-Za-z_]\w*)\s*\()");
  std::set<std::string> names;
  std::set<std::string> voids;
  for (const SourceFile& f : files) {
    for (auto it = std::sregex_iterator(f.pure.begin(), f.pure.end(),
                                        decl_re);
         it != std::sregex_iterator(); ++it) {
      names.insert((*it)[2].str());
    }
    for (auto it = std::sregex_iterator(f.pure.begin(), f.pure.end(),
                                        void_re);
         it != std::sregex_iterator(); ++it) {
      voids.insert((*it)[1].str());
    }
  }
  for (const std::string& v : voids) names.erase(v);
  return names;
}

bool IsStatementKeyword(const std::string& word) {
  static const std::set<std::string> kKeywords = {
      "return",  "co_return", "if",     "for",      "while",
      "switch",  "do",        "else",   "case",     "default",
      "break",   "continue",  "goto",   "throw",    "delete",
      "using",   "typedef",   "template", "class",  "struct",
      "enum",    "namespace", "public", "private",  "protected",
      "new",     "operator",  "static_assert", "sizeof"};
  return kKeywords.count(word) > 0;
}

// If `stmt` is exactly one call expression `obj->Chain()...Name(...)`,
// returns the final callee name.
std::optional<std::string> WholeStatementCallee(const std::string& stmt) {
  static const std::regex chain_re(
      R"(^([A-Za-z_]\w*(\s*::\s*[A-Za-z_]\w*)*(\s*(\.|->)\s*[A-Za-z_]\w*)*)\s*\()");
  std::smatch m;
  if (!std::regex_search(stmt, m, chain_re)) return std::nullopt;
  const std::string chain = m[1].str();
  // First word must not be a control-flow keyword.
  static const std::regex first_re(R"(^[A-Za-z_]\w*)");
  std::smatch fm;
  if (std::regex_search(chain, fm, first_re) &&
      IsStatementKeyword(fm[0].str())) {
    return std::nullopt;
  }
  // The callee is the last identifier of the chain.
  static const std::regex last_re(R"([A-Za-z_]\w*$)");
  std::smatch lm;
  if (!std::regex_search(chain, lm, last_re)) return std::nullopt;
  // The call must span the whole statement: match parens from the
  // opening '(' and require only whitespace after the close.
  size_t open = static_cast<size_t>(m.position(0)) + m.length(0) - 1;
  int depth = 0;
  size_t close = std::string::npos;
  for (size_t i = open; i < stmt.size(); ++i) {
    if (stmt[i] == '(') ++depth;
    if (stmt[i] == ')' && --depth == 0) {
      close = i;
      break;
    }
  }
  if (close == std::string::npos) return std::nullopt;
  if (!Trimmed(stmt.substr(close + 1)).empty()) return std::nullopt;
  return lm[0].str();
}

void CheckStatus(const std::vector<SourceFile>& files, Sink* sink) {
  const std::set<std::string> fallible = CollectFallibleNames(files);
  for (const SourceFile& f : files) {
    // Split the stripped text into statements at top parenthesis
    // depth; braces reset the buffer.
    std::string stmt;
    int stmt_line = 1;
    bool fresh = true;
    int depth = 0;
    for (size_t i = 0; i < f.pure.size(); ++i) {
      const char c = f.pure[i];
      if (fresh && !std::isspace(static_cast<unsigned char>(c))) {
        stmt_line = LineOfOffset(f.pure, i);
        fresh = false;
      }
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if ((c == ';' && depth <= 0) || c == '{' || c == '}') {
        if (c == ';') {
          std::string trimmed = Trimmed(stmt);
          bool voidcast = false;
          static const std::regex void_cast_re(R"(^\(\s*void\s*\)\s*)");
          std::smatch vm;
          if (std::regex_search(trimmed, vm, void_cast_re)) {
            voidcast = true;
            trimmed = trimmed.substr(vm.length(0));
          }
          if (std::optional<std::string> callee =
                  WholeStatementCallee(trimmed);
              callee.has_value() && fallible.count(*callee) > 0) {
            if (voidcast) {
              sink->Emit(f, "status", stmt_line,
                         "blanket (void) cast discards the Status/"
                         "Result of '" + *callee +
                             "'; justify the discard through "
                             "IgnoreNonFatal(status, why)");
            } else {
              sink->Emit(f, "status", stmt_line,
                         "call to '" + *callee +
                             "' discards its Status/Result; handle "
                             "it, propagate it, or wrap it in "
                             "IgnoreNonFatal(status, why)");
            }
          }
        }
        stmt.clear();
        fresh = true;
        depth = 0;
        continue;
      }
      stmt.push_back(c);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: metrics (source scan + export mode).

void CheckMetricsSource(const std::vector<SourceFile>& files, Sink* sink) {
  static const std::regex reg_re(R"(Get(Counter|Gauge|Histogram)\s*\()");
  static const std::regex lit_re("\"([^\"]*)\"");
  for (const SourceFile& f : files) {
    // The registry implementation and its doc examples are the one
    // place allowed to mention non-contract names.
    if (f.module == "obs") continue;
    for (auto it = std::sregex_iterator(f.code.begin(), f.code.end(),
                                        reg_re);
         it != std::sregex_iterator(); ++it) {
      const size_t pos = static_cast<size_t>(it->position(0));
      const int lineno = LineOfOffset(f.code, pos);
      // The name literal is the first string after the call,
      // sometimes on the next line: search to the second newline.
      size_t end = f.code.find('\n', pos);
      if (end != std::string::npos) end = f.code.find('\n', end + 1);
      const std::string window =
          f.code.substr(pos, end == std::string::npos ? std::string::npos
                                                      : end - pos);
      std::smatch lm;
      if (!std::regex_search(window, lm, lit_re)) {
        sink->Emit(f, "metrics", lineno,
                   "registration with a computed name; the naming "
                   "contract can only be linted for string literals");
        continue;
      }
      const std::string name = lm[1].str();
      if (std::optional<std::string> complaint = MetricNameComplaint(name);
          complaint.has_value()) {
        sink->Emit(f, "metrics", lineno, *complaint);
      }
    }
  }
}

int CheckMetricsExport(const std::string& path, Sink* sink,
                       std::ostream& log) {
  std::ifstream in(path);
  if (!in) {
    log << "lexlint: cannot read export file: " << path << "\n";
    return 2;
  }
  static const std::regex type_re(R"(^#\s*TYPE\s+(\S+)\s+\S+)");
  std::string line;
  int lineno = 0;
  int found = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::smatch m;
    if (!std::regex_match(line, m, type_re)) continue;
    ++found;
    const std::string name = m[1].str();
    if (std::optional<std::string> complaint = MetricNameComplaint(name);
        complaint.has_value()) {
      sink->EmitRaw("metrics", path, lineno, "exported " + *complaint);
    }
  }
  if (found == 0) {
    sink->EmitRaw("metrics", path, 0,
                  "export contains no '# TYPE' lines; nothing "
                  "registered at runtime?");
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Rule: doclinks.

void CheckDocLinks(const fs::path& root, Sink* sink) {
  static const char* kDocs[] = {"README.md", "ARCHITECTURE.md",
                                "EXPERIMENTS.md", "DESIGN.md",
                                "ROADMAP.md"};
  static const std::regex link_re(R"(\]\(([^)]*)\))");
  static const std::regex tick_re(
      R"(`((src|tests|bench|scripts|examples|tools)/[A-Za-z0-9_./-]*)`)");

  auto check = [&](const std::string& doc, int lineno,
                   std::string target) {
    const size_t hash = target.find('#');
    if (hash != std::string::npos) target = target.substr(0, hash);
    target = Trimmed(target);
    if (target.empty()) return;
    if (target.rfind("http://", 0) == 0 ||
        target.rfind("https://", 0) == 0 ||
        target.rfind("mailto:", 0) == 0 || target[0] == '/') {
      return;
    }
    // Accept the path itself, or — for references to built binaries
    // like `bench/parallel_scaling` — the source file behind them.
    if (fs::exists(root / target) ||
        fs::exists(root / (target + ".cc")) ||
        fs::exists(root / (target + ".cpp"))) {
      return;
    }
    sink->EmitRaw("doclinks", doc, lineno,
                  "broken reference '" + target +
                      "': no such file in the repo");
  };

  for (const char* doc : kDocs) {
    std::ifstream in(root / doc);
    if (!in) continue;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                          link_re);
           it != std::sregex_iterator(); ++it) {
        check(doc, lineno, (*it)[1].str());
      }
      for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                          tick_re);
           it != std::sregex_iterator(); ++it) {
        check(doc, lineno, (*it)[1].str());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: guards.
//
// The source-level half of the Clang Thread Safety Analysis arm
// (src/common/thread_annotations.h). Two checks:
//
//   (a) raw standard-library mutexes (std::mutex, std::shared_mutex,
//       and their lock adapters) may appear only in src/common/ —
//       everywhere else goes through the annotated common::Mutex /
//       common::SharedMutex wrappers, so -Wthread-safety can see
//       every lock in the tree. A raw mutex elsewhere is a lock the
//       analysis silently ignores.
//
//   (b) a class that owns an annotated mutex member must say, for
//       every other mutable data member, what protects it: the
//       member carries GUARDED_BY / PT_GUARDED_BY, or is immutable
//       (const / static / constexpr), or is an atomic, or is itself
//       a mutex. An unannotated member sitting next to a lock is
//       exactly the shared state the analysis cannot check.
//
// The member scan is heuristic (this is a regex linter, not a
// parser): member-function declarations are recognized by their
// parameter list and skipped, brace-initializers are distinguished
// from function bodies by what follows the closing brace, and a
// `const` anywhere in the declarator counts as immutable (so
// `T* const` passes — the pointee is the callee's problem). Members
// that are genuinely unguarded by design — set once before sharing,
// or internally synchronized — take a
// `// lexlint:allow(guards): <reason>` suppression, which doubles as
// the audit trail the thread-safety build's zero-blanket-suppression
// policy requires.

const std::regex& RawMutexRe() {
  static const std::regex re(
      R"(std\s*::\s*(mutex|shared_mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|shared_timed_mutex|lock_guard|unique_lock|shared_lock|scoped_lock)\b)");
  return re;
}

// A member declaration that makes its class a lock owner: a direct
// (non-pointer, non-reference) common::Mutex / common::SharedMutex
// member. The wrappers' own internals (std::mutex) deliberately do
// not match.
bool IsAnnotatedMutexMember(const std::string& stmt) {
  static const std::regex re(
      R"(^(mutable\s+)?(common\s*::\s*)?(Mutex|SharedMutex)\s+[A-Za-z_]\w*\s*(;|$))");
  return std::regex_search(stmt, re);
}

// The declared name of a member statement, for diagnostics: the last
// identifier before any initializer / array extent.
std::string MemberName(std::string stmt) {
  const size_t cut = stmt.find_first_of("={");
  if (cut != std::string::npos) stmt = stmt.substr(0, cut);
  static const std::regex re(R"(([A-Za-z_]\w*)\s*(\[[^\]]*\]\s*)*$)");
  std::smatch m;
  if (std::regex_search(stmt, m, re)) return m[1].str();
  return "<member>";
}

void CheckGuards(const std::vector<SourceFile>& files, Sink* sink) {
  static const std::regex class_open_re(
      R"((^|[\s;{}])(class|struct|union)\s)");
  static const std::regex enum_open_re(R"((^|[\s;{}])enum\s)");
  static const std::regex label_re(
      R"(^\s*(public|private|protected)\s*:\s*)");
  static const std::regex skip_re(
      R"(^(using\s|typedef\s|friend\s|static_assert\b|template\s*<|enum\s|class\s|struct\s|union\s))");
  static const std::regex immutable_re(R"(\b(const|static|constexpr)\b)");
  static const std::regex atomic_re(R"(atomic|Atomic)");
  static const std::regex guarded_re(R"(\b(GUARDED_BY|PT_GUARDED_BY)\s*\()");
  static const std::regex mutexish_re(
      R"(\b(Mutex|SharedMutex)\b)");

  for (const SourceFile& f : files) {
    // (a) Raw standard mutexes outside the common wrappers.
    if (f.module != "common") {
      for (auto it = std::sregex_iterator(f.pure.begin(), f.pure.end(),
                                          RawMutexRe());
           it != std::sregex_iterator(); ++it) {
        sink->Emit(f, "guards",
                   LineOfOffset(f.pure, static_cast<size_t>(it->position(0))),
                   "raw std::" + (*it)[1].str() +
                       " outside src/common/; use the annotated "
                       "common::Mutex / common::SharedMutex wrappers "
                       "(src/common/mutex.h) so thread-safety analysis "
                       "sees this lock");
      }
    }

    // (b) Unannotated members in mutex-owning classes. One pass over
    // the stripped text with a scope stack; member statements are
    // collected per class and judged when the class body closes (the
    // mutex may be declared after the members it guards).
    struct Member {
      std::string stmt;
      int line;
    };
    struct Scope {
      bool is_class;
      std::string name;
      std::vector<Member> members;
    };
    std::vector<Scope> scopes;
    std::string stmt;
    int stmt_line = 0;
    bool fresh = true;
    int paren = 0;

    auto flush_member = [&]() {
      std::string t = Trimmed(stmt);
      // Peel access labels off the front (they have no ';' of their
      // own, so they ride in with the following declaration).
      std::smatch lm;
      while (std::regex_search(t, lm, label_re)) {
        t = t.substr(static_cast<size_t>(lm.length(0)));
      }
      if (!t.empty() && !scopes.empty() && scopes.back().is_class) {
        scopes.back().members.push_back({std::move(t), stmt_line});
      }
      stmt.clear();
      fresh = true;
      paren = 0;
    };

    auto close_class = [&](const Scope& cls) {
      bool owner = false;
      for (const Member& m : cls.members) {
        if (IsAnnotatedMutexMember(m.stmt)) owner = true;
      }
      if (!owner) return;
      for (const Member& m : cls.members) {
        if (std::regex_search(m.stmt, guarded_re)) continue;
        if (std::regex_search(m.stmt, skip_re)) continue;
        // A parameter list marks a function declaration, not state.
        if (m.stmt.find('(') != std::string::npos) continue;
        if (std::regex_search(m.stmt, immutable_re)) continue;
        if (std::regex_search(m.stmt, atomic_re)) continue;
        if (std::regex_search(m.stmt, mutexish_re)) continue;
        sink->Emit(f, "guards", m.line,
                   "class '" + cls.name + "' owns an annotated mutex but "
                       "member '" + MemberName(m.stmt) +
                       "' has no GUARDED_BY / PT_GUARDED_BY and is not "
                       "const or atomic; annotate what protects it, or "
                       "suppress with a reason if it is set once before "
                       "sharing or internally synchronized "
                       "(src/common/thread_annotations.h)");
      }
    };

    const std::string& text = f.pure;
    for (size_t i = 0; i < text.size(); ++i) {
      const char c = text[i];
      if (fresh && !std::isspace(static_cast<unsigned char>(c))) {
        stmt_line = LineOfOffset(text, i);
        fresh = false;
      }
      if (c == '(') ++paren;
      if (c == ')') paren = std::max(0, paren - 1);
      if (c == ';' && paren == 0) {
        flush_member();
        continue;
      }
      if (c == '{') {
        const std::string head = Trimmed(stmt);
        std::smatch m;
        const bool is_enum = std::regex_search(head, m, enum_open_re);
        const bool is_class =
            !is_enum && std::regex_search(head, m, class_open_re);
        if (is_class) {
          // Class name: last identifier before any base-clause colon
          // (skipping over :: in qualified base names).
          std::string name = head;
          size_t base = std::string::npos;
          for (size_t p = 0; p < name.size(); ++p) {
            if (name[p] == ':') {
              if (p + 1 < name.size() && name[p + 1] == ':') {
                ++p;
                continue;
              }
              base = p;
              break;
            }
          }
          if (base != std::string::npos) name = name.substr(0, base);
          static const std::regex name_re(R"(([A-Za-z_]\w*)\s*$)");
          std::smatch nm;
          scopes.push_back({true,
                            std::regex_search(name, nm, name_re)
                                ? nm[1].str()
                                : "<anonymous>",
                            {}});
          stmt.clear();
          fresh = true;
          paren = 0;
          continue;
        }
        // Distinguish a brace initializer (`member{0};`) from a body:
        // an initializer's closing brace is followed by ';' or ','.
        int depth = 0;
        size_t close = std::string::npos;
        for (size_t j = i; j < text.size(); ++j) {
          if (text[j] == '{') ++depth;
          if (text[j] == '}' && --depth == 0) {
            close = j;
            break;
          }
        }
        size_t after = close == std::string::npos ? std::string::npos
                                                  : close + 1;
        while (after != std::string::npos && after < text.size() &&
               std::isspace(static_cast<unsigned char>(text[after]))) {
          ++after;
        }
        const char next_sig = (after != std::string::npos &&
                               after < text.size())
                                  ? text[after]
                                  : '\0';
        const bool brace_init =
            !head.empty() && head.find('(') == std::string::npos &&
            (next_sig == ';' || next_sig == ',');
        if (brace_init && close != std::string::npos) {
          // Swallow the initializer; the statement continues.
          i = close;
          continue;
        }
        scopes.push_back({false, "", {}});
        stmt.clear();
        fresh = true;
        paren = 0;
        continue;
      }
      if (c == '}') {
        if (!scopes.empty()) {
          if (scopes.back().is_class) close_class(scopes.back());
          scopes.pop_back();
        }
        stmt.clear();
        fresh = true;
        paren = 0;
        continue;
      }
      stmt.push_back(c);
    }
  }
}

}  // namespace

std::string Diagnostic::ToString() const {
  std::string out = rule + ": " + file;
  if (line > 0) out += ":" + std::to_string(line);
  out += ": " + message;
  return out;
}

const std::vector<std::string>& AllRules() {
  static const std::vector<std::string> kRules = {
      "layering", "bufpool", "kernel",   "latch",
      "status",   "metrics", "doclinks", "guards"};
  return kRules;
}

int Run(const Options& options, std::vector<Diagnostic>* diags,
        std::ostream& log) {
  Sink sink(diags);

  // Validate the rule subset.
  std::set<std::string> rules(options.rules.begin(), options.rules.end());
  for (const std::string& r : rules) {
    if (std::find(AllRules().begin(), AllRules().end(), r) ==
        AllRules().end()) {
      log << "lexlint: unknown rule '" << r << "' (known:";
      for (const std::string& k : AllRules()) log << " " << k;
      log << ")\n";
      return 2;
    }
  }
  auto enabled = [&](const std::string& r) {
    return rules.empty() || rules.count(r) > 0;
  };

  // Export mode: validate a Prometheus dump and nothing else.
  if (!options.export_file.empty()) {
    if (!rules.empty() && rules.count("metrics") == 0) {
      log << "lexlint: --export requires the metrics rule\n";
      return 2;
    }
    const int rc = CheckMetricsExport(options.export_file, &sink, log);
    if (rc != 0) return rc;
    return diags->empty() ? 0 : 1;
  }

  std::error_code ec;
  const fs::path src = fs::canonical(options.src_dir, ec);
  if (ec || !fs::is_directory(src)) {
    log << "lexlint: no such source tree: " << options.src_dir << "\n";
    return 2;
  }
  const fs::path root = options.root_dir.empty()
                            ? src.parent_path()
                            : fs::canonical(options.root_dir, ec);
  if (ec || !fs::is_directory(root)) {
    log << "lexlint: no such root: " << options.root_dir << "\n";
    return 2;
  }

  const bool needs_sources = enabled("layering") || enabled("bufpool") ||
                             enabled("kernel") || enabled("latch") ||
                             enabled("status") || enabled("metrics") ||
                             enabled("guards");
  std::vector<SourceFile> files;
  if (needs_sources) {
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& p : paths) {
      std::optional<SourceFile> f = LoadFile(p, root);
      if (!f.has_value()) {
        log << "lexlint: cannot read " << p.string() << "\n";
        return 2;
      }
      files.push_back(std::move(*f));
    }
    // Reasonless suppressions are violations regardless of rule
    // subset: a bare lexlint:allow hides findings with no audit trail.
    for (const SourceFile& f : files) {
      for (const int line : f.reasonless_allow) {
        sink.EmitRaw("suppression", f.display, line,
                     "lexlint:allow without a reason; write "
                     "'// lexlint:allow(<rule>): <why>'");
      }
    }
  }

  if (enabled("layering")) CheckLayering(files, &sink);
  if (enabled("bufpool")) CheckBufpool(files, &sink);
  if (enabled("kernel")) CheckKernel(files, &sink);
  if (enabled("latch")) CheckLatch(files, &sink);
  if (enabled("status")) CheckStatus(files, &sink);
  if (enabled("metrics")) CheckMetricsSource(files, &sink);
  if (enabled("doclinks")) CheckDocLinks(root, &sink);
  if (enabled("guards")) CheckGuards(files, &sink);

  return diags->empty() ? 0 : 1;
}

}  // namespace lexequal::lexlint
