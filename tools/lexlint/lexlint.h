// lexlint: the project static-analysis pass.
//
// A single driver that owns every source-level invariant the compiler
// cannot check. Run over the src/ tree (and the top-level docs) it
// enforces:
//
//   layering  — the subsystem include DAG (common ← text ← phonetic ←
//               g2p ← match, storage ← index ← engine ← sql, obs and
//               dataset as leaves); no back-edges, no new undeclared
//               layers.
//   bufpool   — buffer-pool pin discipline: FetchPage/NewPage/
//               UnpinPage may appear only inside the pool
//               implementation and the RAII PageGuard; everything
//               else must hold pins through the guard.
//   kernel    — edit-distance kernel discipline: the reference
//               EditDistance/BoundedEditDistance may be called only
//               from match/ (kernel + tests' ground truth), index/
//               (BK-tree metric), and dataset/ (ground-truth
//               metrics); engine and SQL execution paths must verify
//               candidates through match::MatchKernel.
//   latch     — engine latch discipline: the catalog-mutation funnels
//               (SaveCatalogLocked / LoadCatalogLocked /
//               catalog_.AddTable) may be reached only from inside
//               functions whose names end in "Locked" — the engine's
//               convention for "caller already holds latch_". Anything
//               else is shared-state mutation outside the latch.
//   status    — no silently discarded Status / Result<T>: a call to a
//               fallible function whose value is dropped on the floor
//               (including via a bare `(void)` cast) is an error;
//               sanctioned discards go through IgnoreNonFatal().
//   metrics   — MetricsRegistry names must be
//               lexequal_<subsystem>_<name> snake_case (source scan,
//               or --export over a Prometheus text dump).
//   doclinks  — every relative link / backticked repo path in the
//               top-level docs resolves to a real file.
//   guards    — annotated-mutex discipline backing the Clang Thread
//               Safety Analysis arm: raw std::mutex /
//               std::shared_mutex (and their lock adapters) only in
//               src/common/, and every mutable data member of a
//               class that owns a common::Mutex / common::SharedMutex
//               carries GUARDED_BY / PT_GUARDED_BY (or is const /
//               atomic / itself a mutex). Set-once and internally
//               synchronized members take an audited
//               lexlint:allow(guards) suppression.
//
// Suppression: `// lexlint:allow(<rule>): <reason>` on the offending
// line, or alone on the line above it. The reason string is
// mandatory — an unexplained suppression is itself a violation,
// because six months later nobody can tell a justified exemption
// from a silenced bug.
//
// Built by the main CMake tree as build/tools/lexlint and wired into
// ctest (lexlint_check), so `ctest` fails on any new violation.

#ifndef LEXEQUAL_TOOLS_LEXLINT_LEXLINT_H_
#define LEXEQUAL_TOOLS_LEXLINT_LEXLINT_H_

#include <ostream>
#include <string>
#include <vector>

namespace lexequal::lexlint {

/// One finding, formatted as `<rule>: <file>:<line>: <message>`.
struct Diagnostic {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;

  std::string ToString() const;
};

/// What to lint. Defaults lint everything under `src_dir` plus the
/// docs at `root_dir` with every rule.
struct Options {
  /// The source tree to scan (e.g. "<repo>/src").
  std::string src_dir;
  /// Repo root, for the doclinks rule; empty = parent of src_dir.
  std::string root_dir;
  /// Subset of rules to run; empty = all. Known names: layering,
  /// bufpool, kernel, latch, status, metrics, doclinks, guards.
  std::vector<std::string> rules;
  /// Non-empty: validate metric names in this Prometheus text export
  /// instead of scanning sources (implies the metrics rule only).
  std::string export_file;
};

/// All rule names, in reporting order.
const std::vector<std::string>& AllRules();

/// Runs the configured rules. Diagnostics are appended to `diags`
/// (never null). Returns the process exit code: 0 = clean,
/// 1 = violations found, 2 = usage or I/O error (bad path, unknown
/// rule, unreadable export). `log` receives human-oriented progress /
/// error text beyond the diagnostics themselves.
int Run(const Options& options, std::vector<Diagnostic>* diags,
        std::ostream& log);

}  // namespace lexequal::lexlint

#endif  // LEXEQUAL_TOOLS_LEXLINT_LEXLINT_H_
